"""Tests for the perf subsystem: workload registry, harness, emitter, CLI.

Covers the satellite contract of the perf PR:

* workload-registry determinism (pinned seeds, stable names, the
  acceptance workload's exact PR-1 parameters);
* BENCH report schema round-trip through the emitter;
* baseline comparison semantics (tolerance, skips, zero-throughput);
* a ``--smoke`` subprocess run asserting ``BENCH_latest.json`` is
  written and parseable;
* the dirty-interpreter refusal gate.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf.emitter import (
    SCHEMA_VERSION,
    compare_reports,
    load_report,
    make_report,
    validate_report,
    write_report,
)
from repro.perf.harness import interpreter_report, run_workload
from repro.perf.workloads import WORKLOADS, Workload, select_workloads

SRC = Path(__file__).resolve().parent.parent / "src"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


def _tiny_workload(**overrides):
    defaults = dict(
        name="test-sst-ring",
        family="engine",
        protocol="sst",
        topology="ring",
        topo_params=(("n", 12), ("seed", 3)),
        scheduler="central-random",
        scheduler_seed=9,
        init="arbitrary",
        init_params=(("seed", 4),),
        repeats=2,
        tags=("test",),
    )
    defaults.update(overrides)
    return Workload(**defaults)


class TestWorkloadRegistry:
    def test_names_are_unique_and_stable(self):
        assert len(WORKLOADS) == len({w.name for w in WORKLOADS.values()})
        for name, w in WORKLOADS.items():
            assert name == w.name

    def test_acceptance_workload_pins_pr1_parameters(self):
        w = WORKLOADS["acceptance-sst-512"]
        assert w.protocol == "sst"
        assert w.topology == "random"
        assert dict(w.topo_params) == {"n": 512, "seed": 42}
        assert w.scheduler == "central-random"
        assert w.scheduler_seed == 3
        assert dict(w.init_params) == {"seed": 7}
        # run to silence: no budget caps on the acceptance number
        assert w.round_budget == 0 and w.move_budget == 0
        assert "acceptance" in w.tags

    def test_sweep_families_cover_the_pinned_sizes(self):
        for family in ("bfs", "mst", "mdst", "nca"):
            for n in (128, 512, 2048):
                assert f"{family}-{n}" in WORKLOADS, f"missing {family}-{n}"

    def test_selection_modes(self):
        smoke = select_workloads(smoke=True)
        full = select_workloads()
        assert {w.name for w in smoke} == {
            "acceptance-sst-512",
            "smoke-sst-48",
            "smoke-shard-sst-512",
            "smoke-churn-sst-48",
            "smoke-bfs-48",
            "smoke-mst-48",
            "smoke-mdst-48",
            "smoke-nca-48",
            "smoke-guided-bfs-48",
            "smoke-guided-mst-48",
            "smoke-guided-mdst-48",
        }
        assert all("full" in w.tags for w in full)
        # the slow opt-in workload is reachable by name only
        assert "mdst-2048" not in {w.name for w in full}
        assert select_workloads(["mdst-2048"])[0].name == "mdst-2048"
        with pytest.raises(KeyError):
            select_workloads(["no-such-workload"])

    def test_registry_rebuild_is_deterministic(self):
        from repro.perf.workloads import _build_registry

        assert _build_registry() == WORKLOADS


class TestHarness:
    def test_run_workload_is_deterministic(self):
        a = run_workload(_tiny_workload(), warmup=False)
        b = run_workload(_tiny_workload(), warmup=False)
        keys = ("moves", "rounds", "silent", "n", "m")
        assert {k: a[k] for k in keys} == {k: b[k] for k in keys}
        assert a["silent"] is True
        assert a["moves"] > 0
        assert a["moves_per_sec"] > 0

    def test_repeat_disagreement_is_an_error(self, monkeypatch):
        import repro.perf.harness as harness

        outcomes = iter(
            [(0.1, 10, 2, True, 12, 12), (0.1, 11, 2, True, 12, 12)]
        )
        monkeypatch.setattr(
            harness, "_one_execution", lambda w: next(outcomes)
        )
        with pytest.raises(RuntimeError, match="nondeterministic"):
            run_workload(_tiny_workload(), warmup=False)

    def test_move_budget_step_mode(self):
        w = _tiny_workload(
            name="test-step-mode", round_budget=0, move_budget=5, repeats=1
        )
        record = run_workload(w, warmup=False)
        # central daemon: one move per step, budget checked between steps
        assert 0 < record["moves"] <= 5
        assert record["rounds"] == 0  # step mode never completes rounds

    def test_interpreter_report_shape(self):
        report = interpreter_report()
        assert isinstance(report["dirty"], list)
        assert isinstance(report["warnings"], list)
        assert report["implementation"]
        assert report["python"]

    def test_refuses_to_measure_during_obs_capture(self, monkeypatch):
        # an active trace capture puts probe work inside the timed loop;
        # the harness must refuse rather than record poisoned numbers
        monkeypatch.setenv("REPRO_OBS_CAPTURE", "1")
        with pytest.raises(RuntimeError, match="refusing to measure"):
            run_workload(_tiny_workload(), warmup=False)
        assert any("obs trace capture" in reason
                   for reason in interpreter_report()["dirty"])


class TestEmitter:
    def _report(self):
        record = run_workload(_tiny_workload(), repeats=1, warmup=False)
        return make_report(
            "custom", {"test-sst-ring": record}, interpreter_report()
        )

    def test_schema_round_trip(self, tmp_path):
        report = self._report()
        assert validate_report(report) == []
        latest, dated = write_report(report, tmp_path)
        assert latest.name == "BENCH_latest.json"
        assert dated.name.startswith("BENCH_2") and dated.suffix == ".json"
        assert load_report(latest) == report
        assert json.loads(dated.read_text()) == report

    def test_validate_rejects_broken_reports(self):
        assert validate_report({"schema": SCHEMA_VERSION}) != []
        assert validate_report({"schema": 999, "workloads": {}}) != []
        report = self._report()
        del report["workloads"]["test-sst-ring"]["moves_per_sec"]
        assert any("moves_per_sec" in e for e in validate_report(report))
        with pytest.raises(ValueError):
            write_report(report, ".")

    def test_compare_self_is_clean(self):
        report = self._report()
        diff = compare_reports(report, report, tolerance=2.5)
        assert diff["ok"] and diff["regressions"] == []

    def test_compare_flags_slowdowns_beyond_tolerance(self):
        current = self._report()
        baseline = json.loads(json.dumps(current))
        name = "test-sst-ring"
        fast = baseline["workloads"][name]
        fast["moves_per_sec"] = current["workloads"][name]["moves_per_sec"] * 3
        diff = compare_reports(current, baseline, tolerance=2.5)
        assert not diff["ok"] and diff["regressions"] == [name]
        # within tolerance: ok
        fast["moves_per_sec"] = current["workloads"][name]["moves_per_sec"] * 2
        assert compare_reports(current, baseline, tolerance=2.5)["ok"]

    def test_compare_skips_mismatched_workloads(self):
        current, baseline = self._report(), self._report()
        baseline["workloads"]["only-in-baseline"] = dict(
            baseline["workloads"]["test-sst-ring"]
        )
        diff = compare_reports(current, baseline)
        skipped = [r for r in diff["rows"] if r["status"] == "skipped"]
        assert skipped and diff["ok"]

    def test_compare_with_zero_overlap_fails_the_gate(self):
        current, baseline = self._report(), self._report()
        baseline["workloads"] = {
            "renamed": baseline["workloads"]["test-sst-ring"]
        }
        diff = compare_reports(current, baseline)
        assert diff["compared"] == 0
        assert not diff["ok"]

    def test_compare_zero_throughput_always_fails(self):
        current, baseline = self._report(), self._report()
        current["workloads"]["test-sst-ring"]["moves_per_sec"] = 0.0
        diff = compare_reports(current, baseline)
        assert not diff["ok"]


class TestBenchCLI:
    def test_smoke_subprocess_writes_parseable_bench_latest(self, tmp_path):
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "bench",
                "--smoke",
                "--json",
                "--repeats",
                "1",
                "--no-warmup",
                "--out",
                str(tmp_path),
                "--quiet",
            ],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=600,
        )
        assert out.returncode == 0, out.stderr
        latest = tmp_path / "BENCH_latest.json"
        assert latest.exists()
        report = load_report(latest)
        assert report["mode"] == "smoke"
        for name, rec in report["workloads"].items():
            assert rec["moves_per_sec"] > 0, name
        # --json mirrors the report on stdout
        assert json.loads(out.stdout) == report

    def test_baseline_gate_passes_against_itself(self, tmp_path):
        args = [
            sys.executable,
            "-m",
            "repro",
            "bench",
            "--workload",
            "smoke-bfs-48",
            "--repeats",
            "1",
            "--no-warmup",
            "--out",
            str(tmp_path),
            "--quiet",
        ]
        first = subprocess.run(
            args, capture_output=True, text=True, env=_env(), timeout=300
        )
        assert first.returncode == 0, first.stderr
        baseline = tmp_path / "baseline.json"
        (tmp_path / "BENCH_latest.json").rename(baseline)
        second = subprocess.run(
            args + ["--baseline", str(baseline), "--tolerance", "2.5"],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=300,
        )
        assert second.returncode == 0, second.stderr + second.stdout
        assert "perf gate ok" in second.stdout

    def test_dirty_interpreter_refuses_to_record(self, tmp_path):
        code = (
            "import sys\n"
            "sys.settrace(lambda *a: None)\n"
            "from repro.perf.cli import main\n"
            "sys.exit(main(['--smoke', '--out', sys.argv[1]]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path)],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=300,
        )
        assert out.returncode == 2
        assert "dirty interpreter" in out.stderr
        assert not (tmp_path / "BENCH_latest.json").exists()

    def test_list_names_every_workload(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--list"],
            capture_output=True,
            text=True,
            env=_env(),
            timeout=300,
        )
        assert out.returncode == 0
        for name in WORKLOADS:
            assert name in out.stdout

"""End-to-end tests for the distributed MST (Corollary 6.1) and near-MDST
(Corollary 8.1) protocols: tree layer + NCA labels + chain swaps + phases,
with the root-side detector decision (see DESIGN.md, substitution 6)."""

import pytest

from repro.baselines import kruskal_mst
from repro.core import bfs_tree, random_spanning_tree
from repro.core.fr import is_fr_tree
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.tasks import (
    NCALabelLayer,
    guided_mdst_protocol,
    guided_mst_protocol,
)
from repro.graphs import (
    complete_graph,
    grid_graph,
    random_connected_graph,
    ring,
    theta_graph,
    wheel_graph,
)
from repro.runtime import (
    CentralRandomScheduler,
    Simulator,
    SynchronousScheduler,
    corrupt_random_nodes,
    random_configuration,
)


def seeded_config(net, proto, tree):
    base = MalleableTreeProtocol().legal_configuration(net, tree)
    cfg = proto.initial_configuration(net)
    for v in net.nodes:
        cfg[v].update(base[v])
    return cfg


class TestNCALabelLayer:
    def test_labels_settle_on_stable_tree(self):
        from repro.runtime import ComposedProtocol
        net = random_connected_graph(14, seed=1)
        tree = random_spanning_tree(net, seed=2, root=net.min_id)
        proto = ComposedProtocol([MalleableTreeProtocol(), NCALabelLayer()],
                                 name="tree+nca")
        cfg = seeded_config(net, proto, tree)
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=20 * net.n)
        assert result.silent
        assert NCALabelLayer.labels_ok(net, sim.config, tree)

    def test_labels_rebuild_from_arbitrary(self):
        from repro.runtime import ComposedProtocol
        net = grid_graph(3, 3, seed=3)
        proto = ComposedProtocol([MalleableTreeProtocol(), NCALabelLayer()],
                                 name="tree+nca")
        cfg = random_configuration(net, proto, seed=4)
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=200 * net.n)
        assert result.silent
        tree = tree_of_config(net, sim.config)
        assert NCALabelLayer.labels_ok(net, sim.config, tree)


MST_NETS = [
    ring(8, seed=5, weighted=True),
    grid_graph(3, 3, seed=6, weighted=True),
    theta_graph([3, 4], seed=7, weighted=True),
    random_connected_graph(10, seed=8, weighted=True),
]


class TestGuidedMST:
    @pytest.mark.parametrize("net", MST_NETS,
                             ids=[f"g{i}" for i in range(len(MST_NETS))])
    def test_reaches_mst_from_random_tree(self, net):
        proto = guided_mst_protocol()
        start = random_spanning_tree(net, seed=9, root=net.min_id)
        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=seeded_config(net, proto, start))
        result = sim.run(max_rounds=6000 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_from_arbitrary_configuration(self, ):
        net = random_connected_graph(10, seed=10, weighted=True)
        proto = guided_mst_protocol()
        for seed in range(2):
            cfg = random_configuration(net, proto, seed=seed)
            sim = Simulator(net, proto, config=cfg)
            result = sim.run(max_rounds=8000 * net.n)
            assert result.silent, seed
            assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_mst_config_is_silent(self):
        from repro.core import tree_from_edges
        net = random_connected_graph(12, seed=11, weighted=True)
        proto = guided_mst_protocol()
        mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
        sim = Simulator(net, proto, config=seeded_config(net, proto, mst))
        result = sim.run(max_rounds=60 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_under_central_scheduler(self):
        net = ring(8, seed=12, weighted=True)
        proto = guided_mst_protocol()
        start = random_spanning_tree(net, seed=13, root=net.min_id)
        sim = Simulator(net, proto, CentralRandomScheduler(seed=14),
                        config=seeded_config(net, proto, start))
        result = sim.run(max_rounds=30_000)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_fault_recovery(self):
        net = theta_graph([3, 4], seed=15, weighted=True)
        proto = guided_mst_protocol()
        start = random_spanning_tree(net, seed=16, root=net.min_id)
        sim = Simulator(net, proto,
                        config=seeded_config(net, proto, start))
        sim.run(max_rounds=6000 * net.n)
        corrupted, _ = corrupt_random_nodes(net, sim.spec, sim.config,
                                            k=3, seed=17)
        sim2 = Simulator(net, proto, config=corrupted)
        result = sim2.run(max_rounds=8000 * net.n)
        assert result.silent
        assert tree_of_config(net, sim2.config).edges() == kruskal_mst(net)


class TestGuidedMDST:
    def test_complete_graph_star_to_path(self):
        """K_n: a star (degree n-1) must become degree <= 3 (OPT = 2)."""
        net = complete_graph(8, seed=18)
        proto = guided_mdst_protocol()
        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=seeded_config(net, proto, bfs_tree(net)))
        result = sim.run(max_rounds=8000 * net.n)
        assert result.silent
        tree = tree_of_config(net, sim.config)
        assert is_fr_tree(net, tree)
        assert tree.max_degree() <= 3

    @pytest.mark.parametrize("net", [
        wheel_graph(8, seed=19),
        random_connected_graph(10, extra_edges=15, seed=20),
        grid_graph(3, 3, seed=21),
    ], ids=["wheel", "dense", "grid"])
    def test_stabilizes_on_fr_tree(self, net):
        from repro.baselines import exact_minimum_degree
        proto = guided_mdst_protocol()
        start = random_spanning_tree(net, seed=22, root=net.min_id)
        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=seeded_config(net, proto, start))
        result = sim.run(max_rounds=8000 * net.n)
        assert result.silent
        tree = tree_of_config(net, sim.config)
        assert is_fr_tree(net, tree)
        assert tree.max_degree() <= exact_minimum_degree(net) + 1

    def test_from_arbitrary_configuration(self):
        net = wheel_graph(7, seed=23)
        proto = guided_mdst_protocol()
        cfg = random_configuration(net, proto, seed=24)
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=8000 * net.n)
        assert result.silent
        assert is_fr_tree(net, tree_of_config(net, sim.config))

    def test_fr_tree_config_is_silent(self):
        from repro.core.fr import fuerer_raghavachari
        net = random_connected_graph(10, extra_edges=12, seed=25)
        run = fuerer_raghavachari(net)
        tree = run.tree if run.tree.root == net.min_id else run.tree.rerooted(net.min_id)
        proto = guided_mdst_protocol()
        sim = Simulator(net, proto, config=seeded_config(net, proto, tree))
        result = sim.run(max_rounds=100 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).same_edges(tree)

"""Unit + property tests for repro.core.trees (fundamental cycles, swaps)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    RootedTree,
    bfs_tree,
    dfs_tree,
    random_spanning_tree,
    tree_from_edges,
)
from repro.graphs import (
    UWEdge,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    ring,
    theta_graph,
)


class TestRootedTreeConstruction:
    def test_bfs_tree_is_spanning(self):
        net = random_connected_graph(15, seed=1)
        t = bfs_tree(net)
        assert len(t.edges()) == net.n - 1
        assert t.root == net.min_id

    def test_bfs_tree_depths_are_graph_distances(self):
        net = random_connected_graph(20, seed=2)
        t = bfs_tree(net)
        dist = net.bfs_distances(t.root)
        assert all(t.depth(v) == dist[v] for v in net.nodes)

    def test_rejects_two_roots(self):
        net = path_graph(3, scramble_ids=False)
        with pytest.raises(ValueError, match="root"):
            RootedTree(net, {1: None, 2: None, 3: 2})

    def test_rejects_non_neighbor_parent(self):
        net = path_graph(3, scramble_ids=False)
        with pytest.raises(ValueError, match="neighbor"):
            RootedTree(net, {1: None, 2: 1, 3: 1})

    def test_rejects_cycle(self):
        net = ring(4, scramble_ids=False)
        with pytest.raises(ValueError, match="spanning"):
            RootedTree(net, {1: None, 2: 3, 3: 4, 4: 3})

    def test_tree_from_edges_roundtrip(self):
        net = random_connected_graph(12, seed=3)
        t = random_spanning_tree(net, seed=4)
        t2 = tree_from_edges(net, t.edges(), root=t.root)
        assert t2.same_edges(t)
        assert t2.root == t.root

    def test_tree_from_edges_wrong_count(self):
        net = path_graph(4, scramble_ids=False)
        with pytest.raises(ValueError, match="expected"):
            tree_from_edges(net, [(1, 2)], root=1)

    def test_dfs_tree_spans(self):
        net = grid_graph(3, 4, seed=5)
        t = dfs_tree(net)
        assert len(t.edges()) == net.n - 1


class TestTreeQueries:
    def test_children_and_parent_consistent(self):
        net = random_connected_graph(18, seed=7)
        t = random_spanning_tree(net, seed=8)
        for v in net.nodes:
            for c in t.children(v):
                assert t.parent(c) == v

    def test_subtree_sizes_sum(self):
        net = random_connected_graph(16, seed=9)
        t = random_spanning_tree(net, seed=10)
        sizes = t.subtree_sizes()
        assert sizes[t.root] == net.n
        for v in net.nodes:
            assert sizes[v] == 1 + sum(sizes[c] for c in t.children(v))

    def test_path_to_root(self):
        net = path_graph(5, scramble_ids=False)
        t = bfs_tree(net, root=1)
        assert t.path_to_root(5) == [5, 4, 3, 2, 1]

    def test_nca_on_path(self):
        net = path_graph(7, scramble_ids=False)
        t = bfs_tree(net, root=4)
        assert t.nca(1, 7) == 4
        assert t.nca(1, 2) == 2
        assert t.nca(3, 3) == 3

    def test_nca_matches_definition(self):
        net = random_connected_graph(20, seed=11)
        t = random_spanning_tree(net, seed=12)
        for u in list(net.nodes)[:8]:
            for v in list(net.nodes)[-8:]:
                w = t.nca(u, v)
                assert t.is_ancestor(w, u)
                assert t.is_ancestor(w, v)
                # deepest such node: no child of w is a common ancestor
                for c in t.children(w):
                    assert not (t.is_ancestor(c, u) and t.is_ancestor(c, v))

    def test_tree_path_endpoints(self):
        net = random_connected_graph(15, seed=13)
        t = random_spanning_tree(net, seed=14)
        nodes = list(net.nodes)
        path = t.tree_path(nodes[0], nodes[-1])
        assert path[0] == nodes[0]
        assert path[-1] == nodes[-1]
        # consecutive path nodes are tree edges
        for a, b in zip(path, path[1:]):
            assert t.has_edge(a, b)

    def test_degree_counts_tree_edges_only(self):
        net = complete_graph(6, seed=15)
        t = random_spanning_tree(net, seed=16)
        assert sum(t.degree(v) for v in net.nodes) == 2 * (net.n - 1)

    def test_rerooted_preserves_edges(self):
        net = random_connected_graph(14, seed=17)
        t = random_spanning_tree(net, seed=18)
        other = [v for v in net.nodes if v != t.root][0]
        t2 = t.rerooted(other)
        assert t2.root == other
        assert t2.same_edges(t)


class TestFundamentalCycles:
    def test_cycle_on_ring(self):
        net = ring(6, scramble_ids=False)
        t = bfs_tree(net, root=1)
        e = [x for x in net.edges if x not in t.edges()][0]
        cyc = t.fundamental_cycle(e)
        assert set(cyc) == set(net.nodes)  # on a ring, the cycle is everything

    def test_cycle_closes_with_e(self):
        net = random_connected_graph(15, seed=19)
        t = random_spanning_tree(net, seed=20)
        for e in t.non_tree_edges():
            cyc = t.fundamental_cycle(e)
            assert UWEdge(cyc[0], cyc[-1]) == e

    def test_cycle_rejects_tree_edge(self):
        net = ring(5, scramble_ids=False)
        t = bfs_tree(net)
        some_tree_edge = next(iter(t.edges()))
        with pytest.raises(ValueError, match="tree edge"):
            t.fundamental_cycle(some_tree_edge)

    def test_cycle_rejects_non_edge(self):
        net = path_graph(4, scramble_ids=False)
        t = bfs_tree(net)
        with pytest.raises(ValueError, match="not a graph edge"):
            t.fundamental_cycle((1, 4))

    def test_cycle_edges_are_tree_edges(self):
        net = theta_graph([3, 4, 5], seed=21)
        t = bfs_tree(net)
        for e in t.non_tree_edges():
            for f in t.fundamental_cycle_edges(e):
                assert t.has_edge(*f)


class TestSwap:
    def test_swap_produces_spanning_tree(self):
        net = random_connected_graph(15, seed=22)
        t = random_spanning_tree(net, seed=23)
        e = t.non_tree_edges()[0]
        for f in t.fundamental_cycle_edges(e):
            t2 = t.swap(e, f)
            assert len(t2.edges()) == net.n - 1
            assert t2.edges() == (t.edges() | {UWEdge(*e)}) - {UWEdge(*f)}

    def test_swap_keeps_root(self):
        net = random_connected_graph(15, seed=24)
        t = random_spanning_tree(net, seed=25)
        e = t.non_tree_edges()[0]
        f = t.fundamental_cycle_edges(e)[0]
        assert t.swap(e, f).root == t.root

    def test_swap_rejects_f_off_cycle(self):
        net = theta_graph([3, 3, 3], seed=26)
        t = bfs_tree(net)
        e = t.non_tree_edges()[0]
        on_cycle = set(t.fundamental_cycle_edges(e))
        off = [f for f in t.edges() if f not in on_cycle][0]
        with pytest.raises(ValueError, match="fundamental cycle"):
            t.swap(e, off)

    def test_swap_is_reversible(self):
        net = random_connected_graph(12, seed=27)
        t = random_spanning_tree(net, seed=28)
        e = t.non_tree_edges()[0]
        f = t.fundamental_cycle_edges(e)[0]
        t2 = t.swap(e, f)
        t3 = t2.swap(f, e)  # f is now non-tree, e is on its cycle
        assert t3.same_edges(t)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_swap_property_random(self, seed):
        """Any (e, f-on-cycle) swap of any random tree yields a spanning tree
        with the same root, and the detached subtree is reattached intact."""
        net = random_connected_graph(10, seed=seed % 100, weighted=False)
        t = random_spanning_tree(net, seed=seed)
        ntes = t.non_tree_edges()
        if not ntes:
            return
        e = ntes[seed % len(ntes)]
        cyc_edges = t.fundamental_cycle_edges(e)
        f = cyc_edges[seed % len(cyc_edges)]
        t2 = t.swap(e, f)
        assert t2.root == t.root
        assert len(t2.edges()) == net.n - 1
        assert UWEdge(*e) in t2.edges()
        assert UWEdge(*f) not in t2.edges()

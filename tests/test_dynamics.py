"""The dynamic-network & churn scenario engine (ROADMAP item 3).

Five pillars:

* **Event model round-trip** — events serialize to canonical JSON,
  stream through JSONL files byte-identically, and reject malformed
  payloads loudly.
* **Schedule determinism** — the same seed over the same starting
  network yields a byte-identical event stream, for every schedule kind.
* **Revision validity** — :func:`revise` refuses every class of invalid
  event (unknown nodes, duplicate/missing edges, disconnecting removals,
  cut-vertex crashes, ``n_bound`` exhaustion) with a clear
  :class:`EventError`, and the engine refuses sharded simulators and
  mid-round application up front.
* **Incremental ≡ rescan across topology events** — the heart of the
  PR: after every applied event (``check=True``) and at every subsequent
  scheduler selection, the incrementally maintained enabled set must
  equal a from-scratch rescan — for five protocol families under every
  daemon, on the dict, slot, and columnar engine paths.
* **Churn phase integration** — ``execute()`` runs the churn phase with
  super-stabilization metrics, traces carry schema-v2 event rows
  byte-identically across repeats, and the fault-injection field
  validation (the satellite fix) raises ``KeyError`` on unknown names.
"""

import json
import random

import pytest

from repro.baselines.dim_bfs import AdHocBFSProtocol
from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.core.tasks import guided_bfs_protocol, guided_mst_protocol
from repro.graphs import random_connected_graph
from repro.graphs.network import Network
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    EnabledSet,
    Scheduler,
    Simulator,
    random_configuration,
)
from repro.runtime.dynamics import (
    ChurnSchedule,
    EdgeAdd,
    EdgeRemove,
    EventError,
    NodeCrash,
    NodeJoin,
    NodeRecover,
    apply_event,
    dump_events,
    event_from_dict,
    load_events,
    materialize_schedule,
    revise,
    run_churn,
)
from repro.runtime.dynamics.schedules import SCHEDULE_KINDS
from repro.runtime.faults import corrupt_nodes, inject_faults

# name -> (factory, weighted network needed)
FAMILIES = {
    "sst": (SpanningTreeProtocol, False),
    "adhoc-bfs": (AdHocBFSProtocol, False),
    "malleable-tree": (MalleableTreeProtocol, False),
    "guided-bfs": (guided_bfs_protocol, False),
    "guided-mst": (guided_mst_protocol, True),
}


def _headroom_net(n=8, seed=21, weighted=False, headroom=3):
    net = random_connected_graph(n, seed=seed, weighted=weighted)
    return Network(net.nodes, net.edges,
                   weights=net.weights if weighted else None,
                   id_space=net.id_space + headroom,
                   n_bound=net.n + headroom)


# ----------------------------------------------------------------------
# event model round-trip
# ----------------------------------------------------------------------


class TestEventModel:
    def test_canonical_json_and_round_trip(self):
        events = [EdgeAdd(5, 2), EdgeRemove(7, 3), NodeCrash(4),
                  NodeJoin(9, (1, 3), init="sampled"),
                  NodeRecover(6, (2,), init="bottom"),
                  EdgeAdd(1, 2, weight=17)]
        for ev in events:
            line = ev.to_json()
            assert line == json.dumps(json.loads(line), sort_keys=True,
                                      separators=(",", ":"))
            assert event_from_dict(json.loads(line)) == ev

    def test_edge_events_canonicalize_endpoints(self):
        assert (EdgeAdd(5, 2).u, EdgeAdd(5, 2).v) == (2, 5)
        assert EdgeRemove(5, 2) == EdgeRemove(2, 5)
        with pytest.raises(ValueError, match="self-loop"):
            EdgeAdd(3, 3)

    def test_join_validation(self):
        with pytest.raises(ValueError, match="no attachment"):
            NodeJoin(5, ())
        with pytest.raises(ValueError, match="self-loop"):
            NodeJoin(5, (5,))
        with pytest.raises(ValueError, match="unknown init"):
            NodeJoin(5, (1,), init="zeros")
        # attachment endpoints are sorted + deduped
        assert NodeJoin(5, (3, 1, 3)).edges == (1, 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "edge-weight-change", "u": 1, "v": 2})

    def test_jsonl_stream_round_trip(self, tmp_path):
        events = [EdgeAdd(1, 2), NodeCrash(3), NodeJoin(9, (1,))]
        path = tmp_path / "events.jsonl"
        dump_events(path, events)
        assert load_events(path) == events
        # byte-identical re-dump
        first = path.read_bytes()
        dump_events(path, load_events(path))
        assert path.read_bytes() == first

    def test_blank_line_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(EdgeAdd(1, 2).to_json() + "\n\n" +
                        NodeCrash(3).to_json() + "\n")
        with pytest.raises(ValueError, match="blank line"):
            load_events(path)

    def test_lost_neighbors(self):
        assert EdgeRemove(2, 5).lost_neighbors(2) == {5}
        assert EdgeRemove(2, 5).lost_neighbors(5) == {2}
        assert EdgeRemove(2, 5).lost_neighbors(7) == frozenset()
        assert NodeCrash(4).lost_neighbors(1) == {4}
        assert NodeCrash(4).lost_neighbors(4) == frozenset()
        assert EdgeAdd(2, 5).lost_neighbors(2) == frozenset()
        assert NodeJoin(9, (1,)).lost_neighbors(1) == frozenset()


# ----------------------------------------------------------------------
# schedule determinism
# ----------------------------------------------------------------------


class TestScheduleDeterminism:
    @pytest.mark.parametrize("kind", SCHEDULE_KINDS)
    def test_same_seed_byte_identical_stream(self, kind):
        net = _headroom_net(n=8, seed=3, headroom=4)
        a = materialize_schedule(net, kind=kind, count=6, seed=77)
        b = materialize_schedule(net, kind=kind, count=6, seed=77)
        assert [e.to_json() for e in a] == [e.to_json() for e in b]
        assert a, f"kind {kind} produced no events"

    def test_different_seeds_diverge(self):
        net = _headroom_net(n=8, seed=3, headroom=4)
        a = materialize_schedule(net, kind="mixed", count=8, seed=1)
        b = materialize_schedule(net, kind="mixed", count=8, seed=2)
        assert [e.to_json() for e in a] != [e.to_json() for e in b]

    def test_every_materialized_event_is_valid(self):
        # the schedule only draws feasible events: replaying the stream
        # through revise() must never raise
        net = _headroom_net(n=8, seed=3, headroom=4)
        for kind in SCHEDULE_KINDS:
            current = net
            for ev in materialize_schedule(net, kind=kind, count=6,
                                           seed=13):
                current = revise(current, ev)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            ChurnSchedule("edge-teleport", seed=0)

    def test_crash_recover_restores_surviving_edges(self):
        net = _headroom_net(n=8, seed=3, headroom=4)
        sched = ChurnSchedule("crash-recover", seed=5)
        crash = sched.next_event(net)
        assert isinstance(crash, NodeCrash)
        after = revise(net, crash)
        recover = sched.next_event(after)
        assert isinstance(recover, NodeRecover)
        assert recover.node == crash.node
        assert set(recover.edges) <= set(net.neighbors(crash.node))


# ----------------------------------------------------------------------
# revision validity
# ----------------------------------------------------------------------


class TestRevise:
    def test_edge_add_and_remove(self):
        net = _headroom_net(n=6, seed=4)
        u, v = sorted(net.non_edges())[0]
        grown = revise(net, EdgeAdd(u, v))
        assert grown.has_edge(u, v) and not net.has_edge(u, v)
        back = revise(grown, EdgeRemove(u, v))
        assert sorted(back.edges) == sorted(net.edges)
        # bounds ride along unchanged
        assert grown.n_bound == net.n_bound
        assert grown.id_space == net.id_space

    def test_errors(self):
        net = Network([1, 2, 3], [(1, 2), (2, 3)], n_bound=3)
        with pytest.raises(EventError, match="does not exist"):
            revise(net, EdgeAdd(1, 9))
        with pytest.raises(EventError, match="already exists"):
            revise(net, EdgeAdd(1, 2))
        with pytest.raises(EventError, match="no such edge"):
            revise(net, EdgeRemove(1, 3))
        with pytest.raises(EventError, match="disconnects"):
            revise(net, EdgeRemove(1, 2))
        with pytest.raises(EventError, match="cut vertex"):
            revise(net, NodeCrash(2))
        with pytest.raises(EventError, match="does not exist"):
            revise(net, NodeCrash(9))
        with pytest.raises(EventError, match="n_bound"):
            revise(net, NodeJoin(4, (1,)))  # no headroom
        roomy = Network([1, 2, 3], [(1, 2), (2, 3)], n_bound=4)
        with pytest.raises(EventError, match="already in use"):
            revise(roomy, NodeJoin(2, (1,)))
        with pytest.raises(EventError, match="identity space"):
            revise(roomy, NodeJoin(99, (1,)))
        with pytest.raises(EventError, match="do not exist"):
            revise(roomy, NodeJoin(4, (7,)))

    def test_weighted_edges_stay_distinct(self):
        net = _headroom_net(n=6, seed=4, weighted=True)
        u, v = sorted(net.non_edges())[0]
        grown = revise(net, EdgeAdd(u, v))
        ws = list(grown.weights.values())
        assert len(set(ws)) == len(ws)
        taken = next(iter(net.weights.values()))
        with pytest.raises(EventError, match="already used"):
            revise(net, EdgeAdd(u, v, weight=taken))


# ----------------------------------------------------------------------
# engine guards
# ----------------------------------------------------------------------


def _sst_sim(scheduler="central-random", **kwargs):
    net = _headroom_net(n=8, seed=21, headroom=3)
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=22)
    sim = Simulator(net, proto,
                    ALL_SCHEDULER_FACTORIES[scheduler](23), config=cfg,
                    **kwargs)
    assert sim.run(max_rounds=50_000).silent
    return sim


class TestApplyGuards:
    def test_refuses_sharded_simulator(self):
        from repro.graphs.implicit import build_topology
        from repro.runtime.sharding import ShardedSimulator, plan_partition

        topo = build_topology("implicit-grid", {"rows": 4, "cols": 4})
        sharded = ShardedSimulator(topo, SpanningTreeProtocol,
                                   plan_partition(topo, 2), init_seed=7)
        try:
            with pytest.raises(ValueError, match="sharded run"):
                apply_event(sharded, EdgeAdd(1, 2))
        finally:
            sharded.close()

    def test_refuses_non_simulator(self):
        with pytest.raises(TypeError, match="needs a"):
            apply_event(object(), EdgeAdd(1, 2))

    def test_refuses_mid_round(self):
        sim = _sst_sim()
        sim._pending = set()  # what an in-flight round looks like
        try:
            with pytest.raises(RuntimeError, match="mid-round"):
                apply_event(sim, NodeCrash(sorted(sim.net.nodes)[0]))
        finally:
            sim._pending = None

    def test_invalid_event_leaves_simulator_untouched(self):
        sim = _sst_sim()
        before = sim.net
        with pytest.raises(EventError):
            apply_event(sim, EdgeAdd(1, 999))
        assert sim.net is before
        assert sim.is_silent()


# ----------------------------------------------------------------------
# incremental == rescan across topology events (the PR's heart)
# ----------------------------------------------------------------------


class CrossCheckingScheduler(Scheduler):
    """Asserts incremental enabled set == full rescan before every
    selection, then delegates (see test_engine_incremental)."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"xcheck({inner.name})"
        self.sim: Simulator | None = None
        self.checks = 0

    def reset(self, enabled: EnabledSet) -> None:
        self.inner.reset(enabled)

    def notify(self, added, removed) -> None:
        self.inner.notify(added, removed)

    def select(self, enabled):
        assert list(enabled) == self.sim.rescan_enabled(), (
            "incrementally maintained enabled set diverged from a "
            "from-scratch rescan after a topology event")
        self.checks += 1
        return self.inner.select(enabled)


def _churn_grid_run(proto_name, sched_name, kind, **sim_kwargs):
    factory, weighted = FAMILIES[proto_name]
    net = _headroom_net(n=8, seed=21, weighted=weighted, headroom=3)
    proto = factory()
    cfg = random_configuration(net, proto, seed=22)
    sched = CrossCheckingScheduler(ALL_SCHEDULER_FACTORIES[sched_name](23))
    sim = Simulator(net, proto, sched, config=cfg, **sim_kwargs)
    sched.sim = sim
    assert sim.run(max_rounds=50_000).silent

    metrics = run_churn(sim, kind=kind, waves=2, seed=9, check=True)
    assert metrics["silent"]
    assert metrics["events"] >= 1
    assert sim.enabled_nodes() == sim.rescan_enabled()
    assert sched.checks > 0
    return metrics


class TestIncrementalAcrossEvents:
    @pytest.mark.parametrize("sched_name", sorted(ALL_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("proto_name", sorted(FAMILIES))
    @pytest.mark.parametrize("kind",
                             ["edge-flip", "crash-join", "crash-recover"])
    def test_grid(self, proto_name, sched_name, kind):
        _churn_grid_run(proto_name, sched_name, kind)

    @pytest.mark.parametrize("sched_name", sorted(ALL_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("paths", [
        pytest.param(dict(use_slot_rules=False, use_vector_rules=False),
                     id="dict-path"),
        pytest.param(dict(use_vector_rules=False), id="slot-path"),
        pytest.param(dict(), id="columnar-path"),
    ])
    def test_engine_paths(self, sched_name, paths):
        _churn_grid_run("sst", sched_name, "mixed", **paths)

    def test_engine_paths_agree_on_moves(self):
        # the three compiled paths must execute the identical churn run
        outcomes = set()
        for paths in (dict(use_slot_rules=False, use_vector_rules=False),
                      dict(use_vector_rules=False), dict()):
            m = _churn_grid_run("sst", "central-random", "mixed", **paths)
            outcomes.add((m["resilience_rounds_total"],
                          m["resilience_moves_total"],
                          json.dumps(m["event_kinds"], sort_keys=True)))
        assert len(outcomes) == 1, outcomes

    def test_interrupt_step_fires_on_parent_loss(self):
        # crash a silent SST tree's internal node: every orphan's
        # interrupt rule must reset it to a self-root (the one
        # prioritized corrective write of the interrupt section)
        sim = _sst_sim()
        candidates = [
            v for v in sim.net.nodes
            if any(sim.config[u]["par"] == v for u in sim.net.neighbors(v))
        ]
        victim = None
        for v in candidates:
            try:
                revise(sim.net, NodeCrash(v))
            except EventError:
                continue
            victim = v
            break
        if victim is None:
            pytest.skip("no crashable internal node in this instance")
        orphans = [u for u in sim.net.neighbors(victim)
                   if sim.config[u]["par"] == victim]
        report = apply_event(sim, NodeCrash(victim), check=True)
        assert report.interrupt_writes >= len(orphans)
        for u in orphans:
            assert sim.config[u]["rid"] == u
            assert sim.config[u]["d"] == 0
        assert sim.run(max_rounds=50_000).silent

    def test_joiner_bottom_vs_sampled(self):
        for init in ("bottom", "sampled"):
            sim = _sst_sim()
            free = next(i for i in range(1, sim.net.id_space + 1)
                        if i not in set(sim.net.nodes))
            anchor = sorted(sim.net.nodes)[0]
            report = apply_event(
                sim, NodeJoin(free, (anchor,), init=init),
                rng=random.Random(3), check=True)
            assert free in sim.net.nodes
            assert report.n == sim.net.n
            assert sim.run(max_rounds=50_000).silent

    def test_run_churn_deterministic(self):
        a = _churn_grid_run("sst", "central-random", "mixed")
        b = _churn_grid_run("sst", "central-random", "mixed")
        assert a == b


# ----------------------------------------------------------------------
# fault-injection field validation (the satellite fix)
# ----------------------------------------------------------------------


class TestFaultFieldValidation:
    def test_corrupt_nodes_rejects_unknown_fields(self):
        net = random_connected_graph(6, seed=5)
        proto = SpanningTreeProtocol()
        spec = proto.register_spec(net)
        cfg = proto.initial_configuration(net)
        with pytest.raises(KeyError, match="unknown fields.*'parent'"):
            corrupt_nodes(net, spec, cfg, [net.nodes[0]],
                          random.Random(0), field_names=["parent", "d"])
        # the valid subset still works
        out = corrupt_nodes(net, spec, cfg, [net.nodes[0]],
                            random.Random(0), field_names=["d"])
        assert set(out) == set(cfg)

    def test_inject_faults_rejects_unknown_fields(self):
        sim = _sst_sim()
        with pytest.raises(KeyError, match="unknown fields"):
            inject_faults(sim, [sim.net.nodes[0]], random.Random(0),
                          field_names=["par", "nope"])
        # nothing was written before the refusal
        assert sim.is_silent()


# ----------------------------------------------------------------------
# churn phase integration: execute(), traces, workloads
# ----------------------------------------------------------------------


class TestChurnIntegration:
    def _spec(self, **overrides):
        from repro.experiments.spec import ExperimentSpec
        base = dict(
            experiment="EXP-CHURN", protocol="sst", topology="random",
            topo_params={"n": 10, "seed": 11, "headroom": 3},
            scheduler="central-random", init="arbitrary",
            init_params={"seed": 36}, max_rounds=200_000,
            events={"kind": "mixed", "waves": 2, "check": 1})
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_execute_churn_metrics(self):
        from repro.experiments.runner import execute
        record, ctx = execute(self._spec(), root_seed=0)
        m = record["metrics"]
        assert m["churn_silent"] is True
        assert m["churn"]["events"] == 2
        assert m["churn"]["resilience_rounds_total"] >= 0
        assert "churn_locally_certified" in m
        assert "rejection_hist" in m["churn"]
        # the simulator ended on the revised network
        assert ctx["simulator"].net.n == m["churn"]["waves"][-1]["n"]

    def test_execute_records_bit_identical(self):
        from repro.experiments.runner import canonical_record, execute
        a, _ = execute(self._spec(), root_seed=0)
        b, _ = execute(self._spec(), root_seed=0)
        assert canonical_record(a) == canonical_record(b)

    def test_events_field_fingerprint_compat(self):
        from repro.experiments.spec import ExperimentSpec
        plain = ExperimentSpec(experiment="E", protocol="sst",
                               topology="ring", topo_params={"n": 6})
        # churn-free specs serialize without the field: pre-dynamics
        # fingerprints and stored spec dicts are preserved verbatim
        assert "events" not in plain.to_dict()
        churned = self._spec()
        assert churned.to_dict()["events"]["kind"] == "mixed"
        assert churned.fingerprint(0) != plain.fingerprint(0)
        assert ExperimentSpec.from_dict(churned.to_dict()) == churned

    def test_trace_v2_event_rows_byte_identical(self, tmp_path):
        from repro.experiments.runner import execute
        from repro.obs.trace import read_trace, validate_trace
        spec = self._spec(trace=1)
        paths = []
        for leg in ("a", "b"):
            d = tmp_path / leg
            d.mkdir()
            record, _ = execute(spec, root_seed=0, trace_dir=d)
            paths.append(d / record["metrics"]["trace"])
        assert validate_trace(paths[0]) == []
        assert paths[0].read_bytes() == paths[1].read_bytes()
        header, rows, end = read_trace(paths[0])
        assert header["schema"] == 2
        events = [r for r in rows if r["kind"] == "event"]
        assert len(events) == 2
        for r in events:
            assert set(r) >= {"after_round", "event", "n", "enabled"}
        # end totals cover round rows only
        rounds = [r for r in rows if r["kind"] == "round"]
        assert end["rounds"] == len(rounds)
        assert end["moves"] == sum(r["moves"] for r in rounds)

    def test_validator_rejects_misplaced_event_row(self, tmp_path):
        from repro.obs.trace import dump_line, validate_trace
        path = tmp_path / "bad.jsonl"
        path.write_text(
            dump_line({"kind": "header", "schema": 2, "protocol": "p",
                       "scheduler": "s", "n": 2, "engine": {},
                       "probes": []}) +
            dump_line({"kind": "round", "round": 1, "moves": 1,
                       "enabled_start": 1, "enabled_end": 0}) +
            dump_line({"kind": "event", "after_round": 0,
                       "event": {"kind": "edge-add"}, "n": 2,
                       "enabled": 0}) +
            dump_line({"kind": "end", "rounds": 1, "moves": 1,
                       "silent": True}))
        problems = validate_trace(path)
        assert any("after_round" in p for p in problems)

    def test_churn_campaigns_registered(self):
        from repro.experiments.campaigns import get_campaign
        smoke = get_campaign("churn-smoke")
        assert all(s.experiment == "EXP-CHURN" for s in smoke.specs)
        assert any(s.trace for s in smoke.specs)
        full = get_campaign("churn")
        protos = {s.protocol for s in full.specs}
        assert protos == {"sst", "adhoc-bfs", "guided-bfs"}
        scheds = {s.scheduler for s in full.specs}
        assert scheds == set(ALL_SCHEDULER_FACTORIES)

    def test_headroom_topo_param(self):
        from repro.experiments.registry import build_network
        net = build_network("random", {"n": 10, "seed": 1, "headroom": 4},
                            random.Random(0))
        assert net.n == 10 and net.n_bound == 14
        plain = build_network("random", {"n": 10, "seed": 1},
                              random.Random(0))
        assert plain.n_bound == 10

    def test_churn_workload_validation(self):
        from repro.perf.workloads import WORKLOADS, Workload
        assert "churn-sst-512" in WORKLOADS
        assert "smoke-churn-sst-48" in WORKLOADS
        with pytest.raises(ValueError, match="single-process"):
            Workload(name="x", family="f", protocol="sst",
                     topology="implicit-grid",
                     topo_params=(("rows", 4), ("cols", 4)),
                     init="per-node", shards=2,
                     churn=(("kind", "mixed"),))
        with pytest.raises(ValueError, match="run to silence"):
            Workload(name="x", family="f", protocol="sst",
                     topology="random", topo_params=(("n", 8),),
                     round_budget=4, churn=(("kind", "mixed"),))

    def test_churn_workload_runs(self):
        from repro.perf.harness import run_workload
        from repro.perf.workloads import WORKLOADS
        rec = run_workload(WORKLOADS["smoke-churn-sst-48"], repeats=2,
                           warmup=False)
        assert rec["silent"] is True
        assert rec["moves"] > 0

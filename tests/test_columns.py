"""The columnar bulk-evaluation plane, pinned to the scalar planes.

Three pillars, mirroring ``test_state_schema``'s structure one plane up:

* **ColumnStore contract**: typed per-field ``int64`` columns encode the
  slot rows strictly (exact ints in range, ``NONE`` via the reserved
  sentinel, everything else invalidates the column), the CSR adjacency
  mirrors the network, the aligned row references are zero-copy, and
  engine writes drop :attr:`ColumnStore.fresh` so the next vector
  refresh re-syncs.
* **Backend equality**: the numpy backend and the stdlib ``array('q')``
  fallback (the ``REPRO_NO_NUMPY`` CI gate) encode identical columns and
  drive bit-identical executions.
* **Column path ≡ slot path ≡ dict path, golden**: entire executions of
  every vectorized protocol — ``sst``, its ``adhoc-bfs`` alias, and the
  ``sst``+``cert-digest`` composition — produce bit-identical
  ``(rounds, moves, final configuration)`` across the full daemon grid
  whether the engine vectorizes all-dirty refreshes
  (``use_vector_rules=True``), stays on the compiled slot rules, or is
  forced onto the name-keyed fallback.
"""

import hashlib

import pytest

from repro.baselines.dim_bfs import AdHocBFSProtocol
from repro.certify.oracle import DigestLayer
from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.graphs import random_connected_graph
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    NONE,
    ComposedProtocol,
    Simulator,
    random_configuration,
)
from repro.runtime.columns import NONE_SENTINEL, ColumnStore, numpy_or_none

#: every protocol family that compiles a vector rule
VECTOR_PROTOCOLS = {
    "sst": lambda: SpanningTreeProtocol(),
    "adhoc-bfs": lambda: AdHocBFSProtocol(),
    "sst+digest": lambda: ComposedProtocol(
        [SpanningTreeProtocol(), DigestLayer(fields=("rid", "par", "d"))],
        name="sst+digest"),
}


def _hash(config) -> str:
    canon = repr(tuple(sorted((v, tuple(sorted(s.items())))
                              for v, s in config.items())))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _sst_sim(n=10, seed=3, cfg_seed=5, **kw) -> Simulator:
    net = random_connected_graph(n, seed=seed)
    proto = SpanningTreeProtocol()
    return Simulator(net, proto,
                     config=random_configuration(net, proto, seed=cfg_seed),
                     **kw)


class TestColumnStoreContract:
    def test_engine_builds_the_store_only_when_vectorizable(self):
        sim = _sst_sim()
        assert sim._columns is not None and sim._vector_rule is not None
        # the testing escape hatch forces the scalar paths
        off = _sst_sim(use_vector_rules=False)
        assert off._columns is None and off._vector_rule is None
        # no vector_step -> no store at all
        net = random_connected_graph(8, seed=2)
        plain = Simulator(net, MalleableTreeProtocol())
        assert plain._columns is None and plain._vector_rule is None

    def test_rows_are_zero_copy_aliases(self):
        sim = _sst_sim()
        store = sim._columns
        for v in sim.net.nodes:
            assert store.rows[store.pos[v]] is sim._state[v]

    def test_csr_adjacency_mirrors_network(self):
        sim = _sst_sim(n=12, seed=7)
        net, store = sim.net, sim._columns
        assert store.ids == sorted(net.nodes)
        for i, v in enumerate(store.ids):
            lo, hi = store.nbr_offsets[i], store.nbr_offsets[i + 1]
            nbrs = net.neighbors(v)
            assert tuple(store.nbr_ids[lo:hi]) == tuple(nbrs)
            assert [store.ids[j] for j in store.nbr_index[lo:hi]] == list(nbrs)
            assert set(store.owner_index[lo:hi]) in ({i}, set())
        assert store.e == 2 * net.m
        assert store.min_degree == min(len(net.neighbors(v))
                                       for v in net.nodes)

    def test_sync_round_trips_rows_and_none(self):
        sim = _sst_sim()
        store = sim._columns.sync()
        schema = sim.schema
        assert store.valid_slot(*range(schema.width))
        for v in sim.net.nodes:
            row = sim._state[v]
            assert store.decode_row(v) == row
            for name in schema.names:
                assert store.value(v, schema.slot(name)) == row[
                    schema.slot(name)]
        # an arbitrary sst configuration contains NONE parents; they must
        # have crossed the sentinel encoding, not leaked as raw ints
        par = schema.slot("par")
        nones = [v for v in sim.net.nodes if sim._state[v][par] is NONE]
        assert nones
        for v in nones:
            assert int(store.col(par)[store.pos[v]]) == NONE_SENTINEL
            assert store.value(v, par) is NONE

    @pytest.mark.parametrize("junk", [
        True,                 # bool: repr(True) != repr(1)
        "garbage",            # non-int fault payload
        2 ** 63,              # above int64
        -(2 ** 63),           # the reserved sentinel itself
        0.5,                  # non-int numeric
    ])
    def test_unencodable_values_invalidate_the_column(self, junk):
        sim = _sst_sim()
        victim = max(sim.net.nodes)
        sim.overwrite(victim, {"d": junk})
        store = sim._columns
        assert not store.fresh  # the write staled the columns
        store.sync()
        d = sim.schema.slot("d")
        assert not store.valid_slot(d)
        assert store.valid_slot(sim.schema.slot("rid"))
        with pytest.raises(ValueError):
            store.decode_row(victim)

    def test_extreme_but_legal_ints_encode(self):
        sim = _sst_sim()
        victim = max(sim.net.nodes)
        sim.overwrite(victim, {"d": 2 ** 63 - 1})
        store = sim._columns.sync()
        d = sim.schema.slot("d")
        assert store.valid_slot(d)
        assert store.value(victim, d) == 2 ** 63 - 1

    def test_engine_writes_drop_freshness(self):
        sim = _sst_sim(scheduler=ALL_SCHEDULER_FACTORIES["central-random"](1))
        sim._columns.sync()
        assert sim._columns.fresh
        sim.run_round()  # central daemon: scalar moves, columns untouched
        assert not sim._columns.fresh

    def test_commit_enabled_diffs_and_masks(self):
        sim = _sst_sim()
        store = sim._columns
        ids = store.ids
        old = [ids[1], ids[3]]
        new = [ids[0], ids[3], ids[4]]
        added, removed = store.commit_enabled(new, old)
        assert added == [ids[0], ids[4]]
        assert removed == [ids[1]]
        want = {store.pos[v] for v in new}
        assert {i for i in range(store.n) if store.enabled[i]} == want
        added, removed = store.commit_enabled([], new)
        assert (added, removed) == ([], new)
        assert not any(store.enabled)

    def test_explicit_backend_selection(self):
        sim = _sst_sim()
        arr = ColumnStore(sim.schema, sim.net, sim._state, backend="array")
        assert arr.backend == "array" and arr.np is None
        with pytest.raises(ValueError):
            ColumnStore(sim.schema, sim.net, sim._state, backend="torch")


class TestBackendEquality:
    """numpy columns ≡ array('q') columns, cellwise and run-wise."""

    def test_encoded_columns_match_cellwise(self):
        if numpy_or_none() is None:
            pytest.skip("numpy unavailable (or REPRO_NO_NUMPY set)")
        sim = _sst_sim(n=14, seed=11, cfg_seed=13)
        a = ColumnStore(sim.schema, sim.net, sim._state,
                        backend="numpy").sync()
        b = ColumnStore(sim.schema, sim.net, sim._state,
                        backend="array").sync()
        assert a.valid == b.valid
        for s in range(sim.schema.width):
            if a.valid[s]:
                assert [int(x) for x in a.col(s)] == list(b.col(s))
        for name in ("nbr_offsets", "nbr_index", "nbr_ids", "owner_index",
                     "ids_arr"):
            assert [int(x) for x in getattr(a, name)] == list(
                getattr(b, name))

    @pytest.mark.parametrize("proto_name", sorted(VECTOR_PROTOCOLS))
    def test_full_run_bit_identity_across_backends(self, proto_name,
                                                   monkeypatch):
        if numpy_or_none() is None:
            pytest.skip("numpy unavailable (or REPRO_NO_NUMPY set)")
        net = random_connected_graph(10, seed=17)
        outcomes = []
        for disable in ("", "1"):
            monkeypatch.setenv("REPRO_NO_NUMPY", disable)
            proto = VECTOR_PROTOCOLS[proto_name]()
            cfg = random_configuration(net, proto, seed=19)
            sim = Simulator(net, proto, config=cfg)
            assert sim._columns.backend == ("array" if disable else "numpy")
            result = sim.run(max_rounds=50_000)
            assert result.silent
            outcomes.append((result.rounds, result.moves, _hash(sim.config)))
        assert outcomes[0] == outcomes[1], (
            f"{proto_name}: array('q') backend diverged from numpy")


class TestColumnPathEqualsScalarPaths:
    """Golden bit-identity over the protocol × daemon grid, three engines
    deep: vectorized, slot-scalar, and the name-keyed fallback."""

    @pytest.mark.parametrize("sched_name", sorted(ALL_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("proto_name", sorted(VECTOR_PROTOCOLS))
    def test_full_run_bit_identity(self, proto_name, sched_name):
        net = random_connected_graph(10, seed=29)
        outcomes = []
        for vector, slots in ((True, True), (False, True), (False, False)):
            proto = VECTOR_PROTOCOLS[proto_name]()
            cfg = random_configuration(net, proto, seed=31)
            sim = Simulator(net, proto,
                            ALL_SCHEDULER_FACTORIES[sched_name](37),
                            config=cfg, use_slot_rules=slots,
                            use_vector_rules=vector)
            assert (sim._vector_rule is not None) == vector
            result = sim.run(max_rounds=50_000)
            assert result.silent
            outcomes.append((result.rounds, result.moves, _hash(sim.config)))
        assert outcomes[0] == outcomes[1] == outcomes[2], (
            f"{proto_name} under {sched_name}: the three engine planes "
            f"diverged: {outcomes}")

    def test_synchronous_rounds_actually_vectorize(self):
        sim = _sst_sim(n=16, seed=41, cfg_seed=43)
        calls = []
        inner = sim._vector_rule

        def counting(store, active, patch=None):
            calls.append(1)
            return inner(store, active, patch)

        sim._vector_rule = counting
        assert sim.run(max_rounds=1_000).silent
        # every all-dirty refresh of a synchronous run goes columnar
        assert len(calls) >= sim.rounds

    @pytest.mark.parametrize("proto_name", sorted(VECTOR_PROTOCOLS))
    @pytest.mark.parametrize("sched_name",
                             ["central-random", "distributed-random"])
    def test_incremental_state_matches_rescan(self, proto_name, sched_name):
        """The write-path contracts riding this plane (settles_after_move,
        fast_write_impact) must keep the incremental enabled set exactly
        equal to a from-scratch rescan after every round."""
        net = random_connected_graph(10, seed=47)
        proto = VECTOR_PROTOCOLS[proto_name]()
        sim = Simulator(net, proto,
                        ALL_SCHEDULER_FACTORIES[sched_name](53),
                        config=random_configuration(net, proto, seed=59))
        rounds = 0
        while sim.run_round() and rounds < 200:
            rounds += 1
            assert sim.enabled_nodes() == sim.rescan_enabled()
        assert sim.is_silent()
        assert not sim.enabled_nodes() and not sim.rescan_enabled()

"""Reproduction tests for Lemma 4.1 and the Section IV switch mechanics.

The three claims under test:

1. *Completeness under pruning*: every legal pruning of a correct redundant
   labeling of a spanning tree is accepted at every node.
2. *Soundness*: every labeling (pruned or not) of a non-tree is rejected at
   some node.
3. *Malleability in action* (Fig. 1): along the full three-phase trace of a
   local switch — and of a whole T + e - f chain — every intermediate
   configuration is accepted at every node, and every intermediate parent
   map is a spanning tree (loop-freeness).
"""

import random

import pytest
from dataclasses import replace
from hypothesis import given, settings, strategies as st

from repro.core import RootedTree, bfs_tree, random_spanning_tree
from repro.graphs import (
    UWEdge,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    ring,
    theta_graph,
)
from repro.labeling.malleable import MalleableLabel, MalleablePLS

SCHEME = MalleablePLS()


def parent_map_of(labels):
    return {v: lab.par for v, lab in labels.items()}


class TestCompleteness:
    @pytest.mark.parametrize("net", [
        path_graph(6, seed=1),
        ring(8, seed=2),
        grid_graph(3, 4, seed=3),
        random_connected_graph(15, seed=4),
        complete_graph(6, seed=5),
    ], ids=lambda n: f"n{n.n}m{n.m}")
    def test_full_labels_accepted(self, net):
        for seed in range(3):
            tree = random_spanning_tree(net, seed=seed)
            labels = SCHEME.prove(net, tree)
            assert SCHEME.verify(net, labels).accepted

    def test_size_pruned_root_path_accepted(self):
        net = random_connected_graph(14, seed=6)
        tree = random_spanning_tree(net, seed=7)
        labels = SCHEME.prove(net, tree)
        for target in list(net.nodes)[:6]:
            cur = labels
            for cfg in SCHEME.prune_size_on_root_path(labels, tree, target):
                res = SCHEME.verify(net, cfg)
                assert res.accepted, (target, res.rejecting_nodes)
                cur = cfg

    def test_distance_pruned_subtree_accepted(self):
        net = random_connected_graph(14, seed=8)
        tree = random_spanning_tree(net, seed=9)
        labels = SCHEME.prove(net, tree)
        for top in list(net.nodes)[:6]:
            for cfg in SCHEME.prune_distance_below(labels, tree, top):
                res = SCHEME.verify(net, cfg)
                assert res.accepted, (top, res.rejecting_nodes)

    def test_combined_prunings_accepted(self):
        """Sizes pruned on the two root paths + distances pruned below the
        switching node: exactly the pre-switch configuration of Fig. 1b.
        (The two pruned regions are disjoint for any legal switch: the root
        paths consist of ancestors of w and w', which never lie inside the
        moving subtree.)"""
        net = random_connected_graph(16, seed=10)
        tree = random_spanning_tree(net, seed=11)
        labels = SCHEME.prove(net, tree)
        checked = 0
        for v in net.nodes:
            w = tree.parent(v)
            if w is None:
                continue
            sub = tree.subtree_nodes(v)
            targets = [u for u in net.neighbors(v) if u != w and u not in sub]
            if not targets:
                continue
            w_prime = targets[0]
            cfg = labels
            for t in (w, w_prime):
                for c in SCHEME.prune_size_on_root_path(cfg, tree, t):
                    cfg = c
            for c in SCHEME.prune_distance_below(cfg, tree, v):
                cfg = c
            res = SCHEME.verify(net, cfg)
            assert res.accepted, (v, w_prime, res.rejecting_nodes)
            checked += 1
        assert checked >= 3


class TestSoundness:
    def test_cycle_all_intact_rejected(self):
        net = ring(6, scramble_ids=False)
        nodes = list(net.nodes)
        labels = {}
        for i, v in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            labels[v] = MalleableLabel(rid=1, par=nxt, d=i, s=3)
        assert not SCHEME.verify(net, labels)

    def test_cycle_distance_pruned_rejected_by_size(self):
        """Pruning distances around the cycle leaves the size check, which
        cannot hold around a cycle."""
        net = ring(6, scramble_ids=False)
        nodes = list(net.nodes)
        labels = {}
        for i, v in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            labels[v] = MalleableLabel(rid=1, par=nxt, d=None, s=4)
        assert not SCHEME.verify(net, labels)

    def test_cycle_size_pruned_rejected_by_distance(self):
        net = ring(6, scramble_ids=False)
        nodes = list(net.nodes)
        labels = {}
        for i, v in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            labels[v] = MalleableLabel(rid=1, par=nxt, d=i % 4, s=None)
        assert not SCHEME.verify(net, labels)

    def test_mixed_pruning_on_cycle_rejected(self):
        """A (d,_) node whose cycle-parent keeps its size entry violates the
        case table directly (row 2 forbids parents (d',s') and (_,s'))."""
        net = ring(4, scramble_ids=False)
        labels = {
            1: MalleableLabel(rid=1, par=2, d=1, s=None),
            2: MalleableLabel(rid=1, par=3, d=2, s=4),
            3: MalleableLabel(rid=1, par=4, d=None, s=3),
            4: MalleableLabel(rid=1, par=1, d=0, s=2),
        }
        assert not SCHEME.verify(net, labels)

    def test_both_entries_pruned_rejected(self):
        net = path_graph(3, scramble_ids=False)
        tree = bfs_tree(net, root=1)
        labels = SCHEME.prove(net, tree)
        bad = dict(labels)
        bad[2] = replace(bad[2], d=None, s=None)
        assert not SCHEME.verify(net, bad)

    def test_impostor_root_rejected(self):
        net = path_graph(4, scramble_ids=False)
        labels = {
            1: MalleableLabel(rid=1, par=None, d=0, s=2),
            2: MalleableLabel(rid=1, par=1, d=1, s=1),
            3: MalleableLabel(rid=1, par=None, d=0, s=2),
            4: MalleableLabel(rid=1, par=3, d=1, s=1),
        }
        res = SCHEME.verify(net, labels)
        assert not res.accepted
        assert 3 in res.rejecting_nodes

    def test_non_root_owner_of_root_id_rejected(self):
        net = path_graph(3, scramble_ids=False)
        tree = bfs_tree(net, root=2)
        labels = SCHEME.prove(net, tree)
        assert SCHEME.verify(net, labels).accepted
        # node 1 claims root id 1 while pointing at a parent
        bad = {v: replace(lab, rid=1) for v, lab in labels.items()}
        assert not SCHEME.verify(net, bad)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_random_corruptions_of_non_trees_rejected(self, seed):
        """Random parent maps that are NOT spanning trees, with random
        (possibly pruned) label entries, are always rejected somewhere."""
        rng = random.Random(seed)
        net = random_connected_graph(9, seed=seed % 50)
        nodes = list(net.nodes)
        labels = {}
        rid = rng.choice(nodes)
        for v in nodes:
            par = rng.choice([None] + list(net.neighbors(v)))
            d = rng.choice([None] + list(range(net.n_bound)))
            s = rng.choice([None] + list(range(1, net.n_bound + 1)))
            if d is None and s is None:
                d = rng.randrange(net.n_bound)
            labels[v] = MalleableLabel(rid=rid, par=par, d=d, s=s)
        parent = parent_map_of(labels)
        try:
            RootedTree(net, parent)
            is_tree = True
        except ValueError:
            is_tree = False
        if not is_tree:
            assert not SCHEME.verify(net, labels).accepted


class TestSwitchTraces:
    """Fig. 1: the three-phase local switch and the full chain."""

    def _assert_trace_clean(self, net, trace):
        seen_parent_maps = set()
        for cfg in trace.configs:
            res = SCHEME.verify(net, cfg)
            assert res.accepted, res.rejecting_nodes
            pm = tuple(sorted(parent_map_of(cfg).items(),
                              key=lambda kv: kv[0]))
            if pm not in seen_parent_maps:
                seen_parent_maps.add(pm)
                # loop-freeness: every distinct parent map is a spanning tree
                RootedTree(net, dict(pm))

    def test_local_switch_trace_accepted_throughout(self):
        net = random_connected_graph(14, seed=12)
        tree = random_spanning_tree(net, seed=13)
        labels = SCHEME.prove(net, tree)
        moved = 0
        for v in net.nodes:
            if tree.parent(v) is None:
                continue
            sub = tree.subtree_nodes(v)
            for w2 in net.neighbors(v):
                if w2 == tree.parent(v) or w2 in sub:
                    continue
                trace = SCHEME.local_switch_trace(net, tree, labels, v, w2)
                self._assert_trace_clean(net, trace)
                assert trace.tree_after.parent(v) == w2
                moved += 1
                break
        assert moved >= 3  # the instance offers several legal local switches

    def test_local_switch_rejects_descendant_target(self):
        net = random_connected_graph(10, seed=14)
        tree = random_spanning_tree(net, seed=15)
        labels = SCHEME.prove(net, tree)
        for v in net.nodes:
            if tree.parent(v) is None:
                continue
            sub = tree.subtree_nodes(v)
            inside = [u for u in net.neighbors(v) if u in sub and u != v]
            if inside:
                with pytest.raises(ValueError, match="subtree"):
                    SCHEME.local_switch_trace(net, tree, labels, v, inside[0])
                return
        pytest.skip("instance offers no descendant neighbor")

    def test_full_switch_realizes_swap(self):
        net = theta_graph([3, 4, 5], seed=16)
        tree = bfs_tree(net)
        for e in tree.non_tree_edges():
            for f in tree.fundamental_cycle_edges(e):
                trace = SCHEME.full_switch_trace(net, tree, e, f)
                self._assert_trace_clean(net, trace)
                assert UWEdge(*e) in trace.tree_after.edges()
                assert UWEdge(*f) not in trace.tree_after.edges()

    def test_full_switch_on_random_graphs(self):
        for seed in range(4):
            net = random_connected_graph(12, seed=17 + seed)
            tree = random_spanning_tree(net, seed=18 + seed)
            e = tree.non_tree_edges()[0]
            f = tree.fundamental_cycle_edges(e)[-1]
            trace = SCHEME.full_switch_trace(net, tree, e, f)
            self._assert_trace_clean(net, trace)
            assert trace.tree_after.edges() == (tree.edges() | {UWEdge(*e)}) - {UWEdge(*f)}

    def test_trace_length_linear_in_n(self):
        """One local switch touches O(n) labels: the trace has O(n) steps."""
        for n in (8, 16, 24):
            net = path_graph(n, seed=19)
            # add one chord so a swap exists: path nets have none
            nodes = list(net.nodes)
            from repro.graphs import Network
            edges = list(net.edges) + [(nodes[0], nodes[-1])]
            net2 = Network(nodes, edges)
            tree = bfs_tree(net2, root=nodes[0])
            e = tree.non_tree_edges()[0]
            f = tree.fundamental_cycle_edges(e)[0]
            trace = SCHEME.full_switch_trace(net2, tree, e, f)
            assert len(trace) <= 12 * n

    def test_final_labels_are_full_redundant_labeling(self):
        net = random_connected_graph(12, seed=20)
        tree = random_spanning_tree(net, seed=21)
        e = tree.non_tree_edges()[0]
        f = tree.fundamental_cycle_edges(e)[0]
        trace = SCHEME.full_switch_trace(net, tree, e, f)
        assert trace.configs[-1] == SCHEME.prove(net, trace.tree_after)

    def test_label_bits_logarithmic(self):
        import math
        for n in (8, 32, 128):
            net = path_graph(n, seed=22)
            tree = bfs_tree(net)
            labels = SCHEME.prove(net, tree)
            bits = SCHEME.max_label_bits(net, labels)
            assert bits <= 4 * math.ceil(math.log2(net.id_space)) + 4

"""Golden bit-count tests for :mod:`repro.runtime.metrics`.

The space numbers every benchmark reports come from these three
functions; here they are checked against *hand-computed* bit counts on a
small fixed network, so a regression in any encoder arithmetic (or in the
aggregation itself) shows up as a concrete wrong integer.
"""

import pytest

from repro._bits import bits_for_id
from repro.graphs import path_graph
from repro.runtime import (
    NONE,
    RegisterSpec,
    counter_field,
    custom_field,
    flag_field,
    max_register_bits,
    node_register_bits,
    opt_id_field,
    total_register_bits,
)


@pytest.fixture
def net():
    # P_3 with unscrambled ids {1, 2, 3}: id_space = max(n^2, n+1) = 9,
    # so one identity costs ceil(log2 9) = 4 bits; n_bound = n = 3.
    return path_graph(3, scramble_ids=False)


@pytest.fixture
def spec():
    return RegisterSpec([
        flag_field("mark"),                                     # 1 bit
        opt_id_field("par"),                                    # 1 + 4 bits
        counter_field("d", max_value=lambda net: net.n_bound),  # {0..3}: 2 bits
    ])


def test_hand_checked_constants(net):
    assert net.id_space == 9
    assert bits_for_id(net.id_space) == 4
    assert net.n_bound == 3


def test_node_register_bits_golden(net, spec):
    config = {v: {"mark": False, "par": NONE, "d": 0} for v in net.nodes}
    # per node: 1 (flag) + 5 (option bit + 4-bit id) + 2 (counter) = 8
    assert node_register_bits(net, spec, config) == {1: 8, 2: 8, 3: 8}
    assert max_register_bits(net, spec, config) == 8
    assert total_register_bits(net, spec, config) == 24
    # fixed-width fields: storing a value costs the same as storing NONE
    config[2] = {"mark": True, "par": 1, "d": 3}
    assert node_register_bits(net, spec, config)[2] == 8


def test_value_dependent_field_accounting(net):
    # a variable-length field (like the NCA label encodings): the metrics
    # must charge each node for the value it actually holds
    var = custom_field(
        "lab",
        default=lambda n, v: (),
        bits=lambda n, value: 1 + 3 * len(value),
        corrupt=lambda n, v, rng: (),
    )
    spec = RegisterSpec([var])
    config = {1: {"lab": ()}, 2: {"lab": (10, 20)}, 3: {"lab": (1, 2, 3)}}
    assert node_register_bits(net, spec, config) == {1: 1, 2: 7, 3: 10}
    assert max_register_bits(net, spec, config) == 10
    assert total_register_bits(net, spec, config) == 18


def test_metrics_match_spec_state_bits(net, spec):
    # the aggregations are definitionally sums/maxima of state_bits
    config = {1: {"mark": False, "par": NONE, "d": 1},
              2: {"mark": True, "par": 1, "d": 2},
              3: {"mark": False, "par": 2, "d": 0}}
    per_node = node_register_bits(net, spec, config)
    for v in net.nodes:
        assert per_node[v] == spec.state_bits(net, config[v])
    assert max_register_bits(net, spec, config) == max(per_node.values())
    assert total_register_bits(net, spec, config) == sum(per_node.values())

"""Tests for the state-model runtime: registers, simulator, schedulers, faults.

Uses two tiny self-stabilizing toy protocols:

* MaxIdFlood — every node converges to the maximum identity in the network
  (a classic silent protocol: enabled iff own value != max of (own id,
  neighbor values)).
* ModuloClock — a non-silent unison-like counter (never silent), used to
  check that the engine does not mistake perpetual motion for convergence.
"""

import random

import pytest

from repro.graphs import path_graph, random_connected_graph, ring, star_graph
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    ComposedProtocol,
    CentralRandomScheduler,
    CentralRoundRobinScheduler,
    DistributedRandomScheduler,
    NodeView,
    Protocol,
    RegisterSpec,
    Simulator,
    StarvingScheduler,
    SynchronousScheduler,
    corrupt_random_nodes,
    counter_field,
    id_field,
    max_register_bits,
    node_register_bits,
    random_configuration,
)


class MaxIdFlood(Protocol):
    """Silent SS computation of the network-wide maximum identity.

    Naive max-flooding is NOT self-stabilizing: a corrupted value above the
    true maximum would be supported forever.  As in the paper's spanning
    tree layer, every claim carries a hop counter bounded by N = n_bound;
    ghost claims have no source, so their minimal hop count rises every
    round until they exceed N and are flushed.
    """

    name = "max-id-flood"

    def register_spec(self, net):
        return RegisterSpec([
            id_field("maxid"),
            counter_field("hops", lambda n: n.n_bound),
        ])

    def step(self, view: NodeView):
        candidates = [(view.id, 0)]
        for u in view.neighbors:
            st = view.nbr(u)
            if st["hops"] + 1 <= view.n_bound:
                candidates.append((st["maxid"], st["hops"] + 1))
        # max id, then fewest hops
        best_id = max(c[0] for c in candidates)
        best_hops = min(h for (m, h) in candidates if m == best_id)
        if (view["maxid"], view["hops"]) != (best_id, best_hops):
            return {"maxid": best_id, "hops": best_hops}
        return None

    def is_legal(self, net, config):
        target = max(net.nodes)
        return all(config[v]["maxid"] == target for v in net.nodes)


class ModuloClock(Protocol):
    """A never-silent counter: every node is always enabled."""

    name = "modulo-clock"

    def register_spec(self, net):
        return RegisterSpec([counter_field("tick", lambda n: 7)])

    def step(self, view: NodeView):
        return {"tick": (view["tick"] + 1) % 8}


class TestRegisters:
    def test_default_state(self):
        net = path_graph(3, scramble_ids=False)
        spec = MaxIdFlood().register_spec(net)
        assert spec.default_state(net, 2) == {"maxid": 2, "hops": 0}

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RegisterSpec([id_field("x"), id_field("x")])

    def test_state_bits_id_field(self):
        net = path_graph(4, scramble_ids=False)  # id_space = 16 -> 4 bits
        spec = MaxIdFlood().register_spec(net)
        # hops in {0..4} -> 3 bits; total 7
        assert spec.state_bits(net, {"maxid": 3, "hops": 1}) == 7

    def test_corrupt_state_in_domain(self):
        net = path_graph(4, scramble_ids=False)
        spec = MaxIdFlood().register_spec(net)
        rng = random.Random(0)
        for _ in range(50):
            s = spec.corrupt_state(net, 1, rng)
            assert 1 <= s["maxid"] <= net.id_space

    def test_merged_specs(self):
        a = RegisterSpec([id_field("x")])
        b = RegisterSpec([id_field("y")])
        assert a.merged(b).names == ("x", "y")


class TestSimulatorBasics:
    def test_converges_to_max_id(self):
        net = random_connected_graph(12, seed=1)
        sim = Simulator(net, MaxIdFlood())
        result = sim.run(max_rounds=50)
        assert result.silent
        assert MaxIdFlood().is_legal(net, sim.config)

    def test_converges_from_arbitrary_configuration(self):
        net = random_connected_graph(12, seed=2)
        proto = MaxIdFlood()
        for seed in range(5):
            cfg = random_configuration(net, proto, seed=seed)
            sim = Simulator(net, proto, config=cfg)
            result = sim.run(max_rounds=60)
            assert result.silent
            assert proto.is_legal(net, sim.config)

    def test_round_count_on_path_is_distance(self):
        """Information travels one hop per round under the synchronous daemon:
        a path with the max id at one end needs ~n-1 rounds."""
        net = path_graph(10, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), SynchronousScheduler())
        result = sim.run(max_rounds=30)
        assert result.silent
        assert result.rounds == 9  # distance from node 10 to node 1

    def test_already_silent_run_is_zero_rounds(self):
        net = path_graph(4, scramble_ids=False)
        proto = MaxIdFlood()
        cfg = {v: {"maxid": 4, "hops": 4 - v} for v in net.nodes}
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=5)
        assert result.rounds == 0
        assert result.moves == 0
        assert result.silent

    def test_confirm_silent(self):
        net = ring(6, seed=3)
        sim = Simulator(net, MaxIdFlood())
        sim.run(max_rounds=30)
        assert sim.confirm_silent()

    def test_non_silent_protocol_raises_on_budget(self):
        net = ring(5, seed=4)
        sim = Simulator(net, ModuloClock())
        with pytest.raises(RuntimeError, match="no convergence"):
            sim.run(max_rounds=10)

    def test_stop_when_predicate(self):
        net = ring(5, seed=5)
        sim = Simulator(net, ModuloClock())
        target = lambda n, cfg: all(cfg[v]["tick"] >= 3 for v in n.nodes)
        result = sim.run(max_rounds=100, stop_when=target)
        assert result.stopped_by_predicate
        assert not result.silent

    def test_moves_counted(self):
        net = path_graph(6, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), CentralRandomScheduler(seed=1))
        result = sim.run(max_rounds=100)
        assert result.moves >= 5  # at least the nodes that had to change

    def test_invariant_hook(self):
        net = path_graph(5, scramble_ids=False)
        bad_invariant = lambda n, cfg: False
        sim = Simulator(net, MaxIdFlood(), invariant=bad_invariant)
        result = sim.run(max_rounds=30)
        assert result.invariant_violations > 0

    def test_trace_recording(self):
        net = path_graph(4, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), record_trace=True)
        result = sim.run(max_rounds=10)
        assert len(result.trace) >= 2
        assert result.trace[0] != result.trace[-1]

    def test_overwrite_reactivates(self):
        net = path_graph(5, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood())
        sim.run(max_rounds=20)
        assert sim.is_silent()
        sim.overwrite(1, {"maxid": 1})
        assert not sim.is_silent()
        result = sim.run(max_rounds=20)
        assert result.silent

    def test_rejects_malformed_config(self):
        net = path_graph(3, scramble_ids=False)
        with pytest.raises(ValueError, match="missing"):
            Simulator(net, MaxIdFlood(), config={v: {} for v in net.nodes})


class TestSchedulers:
    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_all_schedulers_converge(self, name):
        net = random_connected_graph(10, seed=6)
        proto = MaxIdFlood()
        cfg = random_configuration(net, proto, seed=7)
        sched = ALL_SCHEDULER_FACTORIES[name](seed=8)
        sim = Simulator(net, proto, sched, config=cfg)
        result = sim.run(max_rounds=500)
        assert result.silent, name
        assert proto.is_legal(net, sim.config), name

    def test_synchronous_selects_all(self):
        assert SynchronousScheduler().select([1, 2, 3]) == [1, 2, 3]

    def test_central_random_selects_one(self):
        s = CentralRandomScheduler(seed=0)
        for _ in range(20):
            assert len(s.select([1, 2, 3])) == 1

    def test_round_robin_rotates(self):
        s = CentralRoundRobinScheduler()
        picks = [s.select([1, 2, 3])[0] for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_distributed_random_nonempty(self):
        s = DistributedRandomScheduler(p=0.1, seed=0)
        for _ in range(50):
            chosen = s.select([1, 2, 3])
            assert chosen
            assert set(chosen) <= {1, 2, 3}

    def test_starving_avoids_victims_when_possible(self):
        s = StarvingScheduler(victims={1}, seed=0)
        for _ in range(20):
            assert s.select([1, 2, 3])[0] != 1
        assert s.select([1]) == [1]  # must pick a victim if only victims enabled

    def test_distributed_random_validates_p(self):
        with pytest.raises(ValueError):
            DistributedRandomScheduler(p=0.0)


class TestComposition:
    def test_layers_share_register(self):
        net = star_graph(5, seed=9)

        class Echo(Protocol):
            """Copies the flood layer's result into its own field."""
            name = "echo"

            def register_spec(self, net):
                return RegisterSpec([id_field("copy")])

            def step(self, view):
                if view["copy"] != view["maxid"]:
                    return {"copy": view["maxid"]}
                return None

        composed = ComposedProtocol([MaxIdFlood(), Echo()])
        sim = Simulator(net, composed)
        result = sim.run(max_rounds=50)
        assert result.silent
        target = max(net.nodes)
        assert all(sim.config[v]["copy"] == target for v in net.nodes)

    def test_lower_layer_updates_visible_to_upper_same_step(self):
        """In one atomic step, an upper layer sees the lower layer's pending
        write at the same node (the register is written atomically)."""
        net = path_graph(2, scramble_ids=False)

        class Mirror(Protocol):
            name = "mirror"

            def register_spec(self, net):
                return RegisterSpec([id_field("mirror")])

            def step(self, view):
                if view["mirror"] != view["maxid"]:
                    return {"mirror": view["maxid"]}
                return None

        composed = ComposedProtocol([MaxIdFlood(), Mirror()])
        sim = Simulator(net, composed, SynchronousScheduler())
        sim.run(max_rounds=10)
        # node 1 adopted maxid=2 and mirrored it within the same atomic step
        assert sim.config[1] == {"maxid": 2, "hops": 1, "mirror": 2}

    def test_field_collision_detected(self):
        net = path_graph(2, scramble_ids=False)
        with pytest.raises(ValueError, match="duplicate"):
            ComposedProtocol([MaxIdFlood(), MaxIdFlood()]).register_spec(net)

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            ComposedProtocol([])


class TestFaultsAndMetrics:
    def test_corrupt_random_nodes_then_restabilize(self):
        net = random_connected_graph(10, seed=10)
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        sim.run(max_rounds=50)
        corrupted, victims = corrupt_random_nodes(
            net, sim.spec, sim.config, k=3, seed=11)
        assert len(victims) == 3
        sim2 = Simulator(net, proto, config=corrupted)
        result = sim2.run(max_rounds=50)
        assert result.silent
        assert proto.is_legal(net, sim2.config)

    def test_corruption_does_not_mutate_original(self):
        net = path_graph(5, scramble_ids=False)
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        sim.run(max_rounds=20)
        before = {v: dict(s) for v, s in sim.config.items()}
        corrupt_random_nodes(net, sim.spec, sim.config, k=5, seed=0)
        assert sim.config == before

    def test_register_bits_measured(self):
        net = path_graph(8, scramble_ids=False)  # id_space 64 -> 6 bits
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        # hops in {0..8} -> 4 bits; total 10
        bits = node_register_bits(net, sim.spec, sim.config)
        assert all(b == 10 for b in bits.values())
        assert max_register_bits(net, sim.spec, sim.config) == 10

"""Tests for the state-model runtime: registers, simulator, schedulers, faults.

Uses two tiny self-stabilizing toy protocols:

* MaxIdFlood — every node converges to the maximum identity in the network
  (a classic silent protocol: enabled iff own value != max of (own id,
  neighbor values)).
* ModuloClock — a non-silent unison-like counter (never silent), used to
  check that the engine does not mistake perpetual motion for convergence.
"""

import random

import pytest

from repro.graphs import path_graph, random_connected_graph, ring, star_graph
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    ComposedProtocol,
    CentralRandomScheduler,
    CentralRoundRobinScheduler,
    DistributedRandomScheduler,
    NodeView,
    Protocol,
    RegisterSpec,
    Scheduler,
    Simulator,
    StarvingScheduler,
    SynchronousScheduler,
    corrupt_random_nodes,
    counter_field,
    id_field,
    inject_random_faults,
    max_register_bits,
    node_register_bits,
    random_configuration,
)


class MaxIdFlood(Protocol):
    """Silent SS computation of the network-wide maximum identity.

    Naive max-flooding is NOT self-stabilizing: a corrupted value above the
    true maximum would be supported forever.  As in the paper's spanning
    tree layer, every claim carries a hop counter bounded by N = n_bound;
    ghost claims have no source, so their minimal hop count rises every
    round until they exceed N and are flushed.
    """

    name = "max-id-flood"

    def register_spec(self, net):
        return RegisterSpec([
            id_field("maxid"),
            counter_field("hops", lambda n: n.n_bound),
        ])

    def step(self, view: NodeView):
        candidates = [(view.id, 0)]
        for u in view.neighbors:
            st = view.nbr(u)
            if st["hops"] + 1 <= view.n_bound:
                candidates.append((st["maxid"], st["hops"] + 1))
        # max id, then fewest hops
        best_id = max(c[0] for c in candidates)
        best_hops = min(h for (m, h) in candidates if m == best_id)
        if (view["maxid"], view["hops"]) != (best_id, best_hops):
            return {"maxid": best_id, "hops": best_hops}
        return None

    def is_legal(self, net, config):
        target = max(net.nodes)
        return all(config[v]["maxid"] == target for v in net.nodes)


class ModuloClock(Protocol):
    """A never-silent counter: every node is always enabled."""

    name = "modulo-clock"

    def register_spec(self, net):
        return RegisterSpec([counter_field("tick", lambda n: 7)])

    def step(self, view: NodeView):
        return {"tick": (view["tick"] + 1) % 8}


class TestRegisters:
    def test_default_state(self):
        net = path_graph(3, scramble_ids=False)
        spec = MaxIdFlood().register_spec(net)
        assert spec.default_state(net, 2) == {"maxid": 2, "hops": 0}

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RegisterSpec([id_field("x"), id_field("x")])

    def test_state_bits_id_field(self):
        net = path_graph(4, scramble_ids=False)  # id_space = 16 -> 4 bits
        spec = MaxIdFlood().register_spec(net)
        # hops in {0..4} -> 3 bits; total 7
        assert spec.state_bits(net, {"maxid": 3, "hops": 1}) == 7

    def test_corrupt_state_in_domain(self):
        net = path_graph(4, scramble_ids=False)
        spec = MaxIdFlood().register_spec(net)
        rng = random.Random(0)
        for _ in range(50):
            s = spec.corrupt_state(net, 1, rng)
            assert 1 <= s["maxid"] <= net.id_space

    def test_merged_specs(self):
        a = RegisterSpec([id_field("x")])
        b = RegisterSpec([id_field("y")])
        assert a.merged(b).names == ("x", "y")


class TestSimulatorBasics:
    def test_converges_to_max_id(self):
        net = random_connected_graph(12, seed=1)
        sim = Simulator(net, MaxIdFlood())
        result = sim.run(max_rounds=50)
        assert result.silent
        assert MaxIdFlood().is_legal(net, sim.config)

    def test_converges_from_arbitrary_configuration(self):
        net = random_connected_graph(12, seed=2)
        proto = MaxIdFlood()
        for seed in range(5):
            cfg = random_configuration(net, proto, seed=seed)
            sim = Simulator(net, proto, config=cfg)
            result = sim.run(max_rounds=60)
            assert result.silent
            assert proto.is_legal(net, sim.config)

    def test_round_count_on_path_is_distance(self):
        """Information travels one hop per round under the synchronous daemon:
        a path with the max id at one end needs ~n-1 rounds."""
        net = path_graph(10, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), SynchronousScheduler())
        result = sim.run(max_rounds=30)
        assert result.silent
        assert result.rounds == 9  # distance from node 10 to node 1

    def test_already_silent_run_is_zero_rounds(self):
        net = path_graph(4, scramble_ids=False)
        proto = MaxIdFlood()
        cfg = {v: {"maxid": 4, "hops": 4 - v} for v in net.nodes}
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=5)
        assert result.rounds == 0
        assert result.moves == 0
        assert result.silent

    def test_confirm_silent(self):
        net = ring(6, seed=3)
        sim = Simulator(net, MaxIdFlood())
        sim.run(max_rounds=30)
        assert sim.confirm_silent()

    def test_non_silent_protocol_raises_on_budget(self):
        net = ring(5, seed=4)
        sim = Simulator(net, ModuloClock())
        with pytest.raises(RuntimeError, match="no convergence"):
            sim.run(max_rounds=10)

    def test_stop_when_predicate(self):
        net = ring(5, seed=5)
        sim = Simulator(net, ModuloClock())
        target = lambda n, cfg: all(cfg[v]["tick"] >= 3 for v in n.nodes)
        result = sim.run(max_rounds=100, stop_when=target)
        assert result.stopped_by_predicate
        assert not result.silent

    def test_moves_counted(self):
        net = path_graph(6, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), CentralRandomScheduler(seed=1))
        result = sim.run(max_rounds=100)
        assert result.moves >= 5  # at least the nodes that had to change

    def test_invariant_hook(self):
        net = path_graph(5, scramble_ids=False)
        bad_invariant = lambda n, cfg: False
        sim = Simulator(net, MaxIdFlood(), invariant=bad_invariant)
        result = sim.run(max_rounds=30)
        assert result.invariant_violations > 0

    def test_trace_recording(self):
        net = path_graph(4, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), record_trace=True)
        result = sim.run(max_rounds=10)
        assert len(result.trace) >= 2
        assert result.trace[0] != result.trace[-1]

    def test_overwrite_reactivates(self):
        net = path_graph(5, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood())
        sim.run(max_rounds=20)
        assert sim.is_silent()
        sim.overwrite(1, {"maxid": 1})
        assert not sim.is_silent()
        result = sim.run(max_rounds=20)
        assert result.silent

    def test_rejects_malformed_config(self):
        net = path_graph(3, scramble_ids=False)
        with pytest.raises(ValueError, match="missing"):
            Simulator(net, MaxIdFlood(), config={v: {} for v in net.nodes})

    def test_trace_is_owned_by_each_result(self):
        """Regression: RunResult.trace used to alias the simulator's
        internal recording — a later run() (or caller mutation) silently
        corrupted previously returned results."""
        net = path_graph(4, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood(), record_trace=True)
        r1 = sim.run(max_rounds=10)
        frozen = [{v: dict(s) for v, s in snap.items()} for snap in r1.trace]
        # a second run appends snapshots; r1 must not grow or change
        sim.overwrite(1, {"maxid": 1, "hops": 0})
        r2 = sim.run(max_rounds=10)
        assert r1.trace == frozen
        assert len(r2.trace) > len(r1.trace)
        # caller mutation of a returned trace must not leak into the next
        r2.trace[0][1]["maxid"] = -999
        r3 = sim.run(max_rounds=10)
        assert r3.trace[0][1]["maxid"] != -999

    def test_overwrite_unknown_node_clear_error(self):
        net = path_graph(3, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood())
        with pytest.raises(KeyError, match="unknown node 99"):
            sim.overwrite(99, {"maxid": 1})

    def test_overwrite_unknown_field_clear_error(self):
        net = path_graph(3, scramble_ids=False)
        sim = Simulator(net, MaxIdFlood())
        with pytest.raises(KeyError, match="unknown fields"):
            sim.overwrite(1, {"nosuch": 1})

    def test_junk_register_values_tolerated(self):
        """Corrupted registers may hold junk outside the field domain
        (unhashable parent pointers, fractional distances); rules must
        classify the node as unstable instead of crashing or adopting."""
        from repro.core.sst import SpanningTreeProtocol
        net = path_graph(4, scramble_ids=False)
        sim = Simulator(net, SpanningTreeProtocol())
        sim.run(max_rounds=30)
        sim.overwrite(2, {"rid": 1, "d": 1, "par": [1]})   # unhashable junk
        sim.overwrite(3, {"rid": 0, "d": -0.5})            # fractional junk
        result = sim.run(max_rounds=30)
        assert result.silent
        assert all(isinstance(sim.config[v]["d"], int) for v in net.nodes)
        assert SpanningTreeProtocol().is_legal(net, sim.config)

    def test_inject_random_faults_in_place(self):
        net = random_connected_graph(10, seed=3)
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        sim.run(max_rounds=50)
        assert sim.is_silent()
        victims = inject_random_faults(sim, k=4, seed=5)
        assert len(victims) == 4
        assert sim.enabled_nodes() == sim.rescan_enabled()
        result = sim.run(max_rounds=50)
        assert result.silent
        assert proto.is_legal(net, sim.config)


class TestRefreshExceptionSafety:
    def test_raising_step_does_not_desynchronize(self):
        """A protocol.step that raises mid-refresh must leave the engine
        consistent: processed transitions reach the scheduler's mirror,
        the failing node stays dirty, and a repaired run still converges
        with the incremental enabled set equal to a full rescan."""

        class Fragile(MaxIdFlood):
            def step(self, view):
                if view["hops"] == -1:  # poisoned sentinel
                    raise RuntimeError("boom")
                return super().step(view)

        net = path_graph(6, scramble_ids=False)
        sched = StarvingScheduler(victims={6}, seed=0)
        sim = Simulator(net, Fragile(), sched)
        sim.run(max_rounds=30)
        assert sim.is_silent()
        # dirty three nodes; the middle one poisons its own re-proposal
        sim.overwrite(1, {"maxid": 1, "hops": 0})
        sim.overwrite(3, {"hops": -1})
        sim.overwrite(5, {"maxid": 1, "hops": 0})
        with pytest.raises(RuntimeError, match="boom"):
            sim.enabled_nodes()
        # node 1's transition was applied before the raise: it must have
        # reached the starving daemon's non-victim mirror, and the failing
        # node must still be dirty (to be re-proposed after repair)
        assert 1 in sched._preferred
        assert 3 in sim._dirty
        # repair the poisoned register; everything must reconverge
        sim.overwrite(3, {"hops": 0})
        assert sim.enabled_nodes() == sim.rescan_enabled()
        result = sim.run(max_rounds=30)
        assert result.silent
        assert sim.enabled_nodes() == sim.rescan_enabled()


class _BadScheduler(Scheduler):
    """Returns whatever its factory says — for contract-violation tests."""

    name = "bad"

    def __init__(self, fn):
        self._fn = fn

    def select(self, enabled):
        return self._fn(list(enabled))


class TestSelectionValidation:
    """run_round must reject daemon contract violations loudly instead of
    double-counting moves or silently tolerating stray nodes."""

    def _sim(self, sched):
        net = path_graph(5, scramble_ids=False)
        return Simulator(net, MaxIdFlood(), sched)

    def test_duplicate_selection_rejected(self):
        sim = self._sim(_BadScheduler(lambda en: [en[0], en[0]]))
        with pytest.raises(RuntimeError, match="duplicate"):
            sim.run_round()

    def test_non_enabled_selection_rejected(self):
        net = path_graph(5, scramble_ids=False)
        sim = Simulator(
            net, MaxIdFlood(),
            _BadScheduler(lambda en: [next(v for v in net.nodes
                                           if v not in en)]))
        with pytest.raises(RuntimeError, match="non-enabled"):
            sim.run_round()

    def test_empty_selection_rejected(self):
        sim = self._sim(_BadScheduler(lambda en: []))
        with pytest.raises(RuntimeError, match="selected no node"):
            sim.run_round()

    def test_mixed_valid_and_stray_rejected(self):
        sim = self._sim(_BadScheduler(lambda en: en + [10_000]))
        with pytest.raises(RuntimeError, match="non-enabled"):
            sim.run_round()


class TestSchedulers:
    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_all_schedulers_converge(self, name):
        net = random_connected_graph(10, seed=6)
        proto = MaxIdFlood()
        cfg = random_configuration(net, proto, seed=7)
        sched = ALL_SCHEDULER_FACTORIES[name](seed=8)
        sim = Simulator(net, proto, sched, config=cfg)
        result = sim.run(max_rounds=500)
        assert result.silent, name
        assert proto.is_legal(net, sim.config), name

    def test_synchronous_selects_all(self):
        assert SynchronousScheduler().select([1, 2, 3]) == [1, 2, 3]

    def test_central_random_selects_one(self):
        s = CentralRandomScheduler(seed=0)
        for _ in range(20):
            assert len(s.select([1, 2, 3])) == 1

    def test_round_robin_rotates(self):
        s = CentralRoundRobinScheduler()
        picks = [s.select([1, 2, 3])[0] for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_distributed_random_nonempty(self):
        s = DistributedRandomScheduler(p=0.1, seed=0)
        for _ in range(50):
            chosen = s.select([1, 2, 3])
            assert chosen
            assert set(chosen) <= {1, 2, 3}

    def test_starving_avoids_victims_when_possible(self):
        s = StarvingScheduler(victims={1}, seed=0)
        for _ in range(20):
            assert s.select([1, 2, 3])[0] != 1
        assert s.select([1]) == [1]  # must pick a victim if only victims enabled

    def test_distributed_random_validates_p(self):
        with pytest.raises(ValueError):
            DistributedRandomScheduler(p=0.0)

    def test_distributed_random_bounded_redraws(self):
        """Regression: tiny p with a small enabled set used to spin in an
        unbounded redraw loop; the daemon now falls back to one uniformly
        random enabled node after ``max_redraws`` empty draws."""
        s = DistributedRandomScheduler(p=1e-12, seed=0, max_redraws=8)
        for _ in range(10):
            chosen = s.select([4, 7, 9])
            assert len(chosen) == 1
            assert chosen[0] in {4, 7, 9}

    def test_distributed_random_validates_max_redraws(self):
        with pytest.raises(ValueError):
            DistributedRandomScheduler(p=0.5, max_redraws=0)


class TestComposition:
    def test_layers_share_register(self):
        net = star_graph(5, seed=9)

        class Echo(Protocol):
            """Copies the flood layer's result into its own field."""
            name = "echo"

            def register_spec(self, net):
                return RegisterSpec([id_field("copy")])

            def step(self, view):
                if view["copy"] != view["maxid"]:
                    return {"copy": view["maxid"]}
                return None

        composed = ComposedProtocol([MaxIdFlood(), Echo()])
        sim = Simulator(net, composed)
        result = sim.run(max_rounds=50)
        assert result.silent
        target = max(net.nodes)
        assert all(sim.config[v]["copy"] == target for v in net.nodes)

    def test_lower_layer_updates_visible_to_upper_same_step(self):
        """In one atomic step, an upper layer sees the lower layer's pending
        write at the same node (the register is written atomically)."""
        net = path_graph(2, scramble_ids=False)

        class Mirror(Protocol):
            name = "mirror"

            def register_spec(self, net):
                return RegisterSpec([id_field("mirror")])

            def step(self, view):
                if view["mirror"] != view["maxid"]:
                    return {"mirror": view["maxid"]}
                return None

        composed = ComposedProtocol([MaxIdFlood(), Mirror()])
        sim = Simulator(net, composed, SynchronousScheduler())
        sim.run(max_rounds=10)
        # node 1 adopted maxid=2 and mirrored it within the same atomic step
        assert sim.config[1] == {"maxid": 2, "hops": 1, "mirror": 2}

    def test_field_collision_detected(self):
        net = path_graph(2, scramble_ids=False)
        with pytest.raises(ValueError, match="duplicate"):
            ComposedProtocol([MaxIdFlood(), MaxIdFlood()]).register_spec(net)

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            ComposedProtocol([])

    def test_read_locality_is_widest_of_layers(self):
        class Oracle(MaxIdFlood):
            read_locality = "global"

        assert MaxIdFlood().read_locality == "neighborhood"
        assert ComposedProtocol([MaxIdFlood()]).read_locality == "neighborhood"
        assert (ComposedProtocol([MaxIdFlood(), Oracle()]).read_locality
                == "global")


class TestFaultsAndMetrics:
    def test_corrupt_random_nodes_then_restabilize(self):
        net = random_connected_graph(10, seed=10)
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        sim.run(max_rounds=50)
        corrupted, victims = corrupt_random_nodes(
            net, sim.spec, sim.config, k=3, seed=11)
        assert len(victims) == 3
        sim2 = Simulator(net, proto, config=corrupted)
        result = sim2.run(max_rounds=50)
        assert result.silent
        assert proto.is_legal(net, sim2.config)

    def test_corruption_does_not_mutate_original(self):
        net = path_graph(5, scramble_ids=False)
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        sim.run(max_rounds=20)
        before = {v: dict(s) for v, s in sim.config.items()}
        corrupt_random_nodes(net, sim.spec, sim.config, k=5, seed=0)
        assert sim.config == before

    def test_register_bits_measured(self):
        net = path_graph(8, scramble_ids=False)  # id_space 64 -> 6 bits
        proto = MaxIdFlood()
        sim = Simulator(net, proto)
        # hops in {0..8} -> 4 bits; total 10
        bits = node_register_bits(net, sim.spec, sim.config)
        assert all(b == 10 for b in bits.values())
        assert max_register_bits(net, sim.spec, sim.config) == 10

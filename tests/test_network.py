"""Unit tests for repro.graphs.network."""

import random

import pytest

from repro.graphs import Network, UWEdge
from repro.graphs import (
    caterpillar_graph,
    complete_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    random_tree_graph,
    ring,
    star_graph,
    theta_graph,
    wheel_graph,
)


class TestUWEdge:
    def test_sorts_endpoints(self):
        assert UWEdge(5, 2) == (2, 5)
        assert UWEdge(2, 5) == (2, 5)

    def test_idempotent(self):
        assert UWEdge(*UWEdge(9, 1)) == (1, 9)


class TestNetworkConstruction:
    def test_basic_triangle(self):
        net = Network([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
        assert net.n == 3
        assert net.m == 3
        assert net.neighbors(1) == (2, 3)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="distinct"):
            Network([1, 1, 2], [(1, 2)])

    def test_rejects_nonpositive_ids(self):
        with pytest.raises(ValueError, match="positive"):
            Network([0, 1], [(0, 1)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Network([1, 2], [(1, 1), (1, 2)])

    def test_rejects_unknown_endpoint(self):
        with pytest.raises(ValueError, match="unknown"):
            Network([1, 2], [(1, 3)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            Network([1, 2, 3, 4], [(1, 2), (3, 4)])

    def test_parallel_edges_collapse(self):
        net = Network([1, 2], [(1, 2), (2, 1)])
        assert net.m == 1

    def test_single_node(self):
        net = Network([7], [])
        assert net.n == 1
        assert net.m == 0


class TestWeights:
    def test_distinct_weights_enforced(self):
        with pytest.raises(ValueError, match="distinct"):
            Network([1, 2, 3], [(1, 2), (2, 3), (1, 3)],
                    weights={(1, 2): 5, (2, 3): 5, (1, 3): 1})

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            Network([1, 2, 3], [(1, 2), (2, 3), (1, 3)],
                    weights={(1, 2): 1, (2, 3): 2})

    def test_weight_lookup_symmetric(self):
        net = Network([1, 2], [(1, 2)], weights={(1, 2): 9})
        assert net.weight(1, 2) == 9
        assert net.weight(2, 1) == 9

    def test_unweighted_raises(self):
        net = Network([1, 2], [(1, 2)])
        with pytest.raises(ValueError, match="unweighted"):
            net.weight(1, 2)

    def test_with_distinct_weights_helper(self):
        rng = random.Random(3)
        net = Network.with_distinct_weights(
            [1, 2, 3], [(1, 2), (2, 3), (1, 3)], rng=rng)
        ws = sorted(net.weights.values())
        assert ws == [1, 2, 3]

    def test_with_distinct_weights_never_ties(self):
        """The docstring promise: weights are a permutation of {1..m}
        (times scale), hence pairwise distinct by construction."""
        for seed in range(5):
            rng = random.Random(seed)
            net = Network.with_distinct_weights(
                range(1, 8),
                [(i, i + 1) for i in range(1, 7)] + [(1, 7), (2, 6)],
                rng=rng)
            ws = list(net.weights.values())
            assert len(set(ws)) == len(ws)
            assert sorted(ws) == list(range(1, net.m + 1))

    def test_with_distinct_weights_scale(self):
        net = Network.with_distinct_weights(
            [1, 2, 3], [(1, 2), (2, 3), (1, 3)], scale=10)
        assert sorted(net.weights.values()) == [10, 20, 30]

    def test_with_distinct_weights_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            Network.with_distinct_weights([1, 2], [(1, 2)], scale=0)
        with pytest.raises(ValueError, match="scale"):
            # a float would be silently truncated by Network's int() coercion
            Network.with_distinct_weights([1, 2], [(1, 2)], scale=2.5)

    def test_neighbor_set_matches_neighbors(self):
        net = Network([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4), (1, 4)])
        for u in net.nodes:
            assert net.neighbor_set(u) == frozenset(net.neighbors(u))
        assert 3 not in net.neighbor_set(1)

    def test_reweighted_keeps_topology(self):
        net = Network([1, 2, 3], [(1, 2), (2, 3)],
                      weights={(1, 2): 1, (2, 3): 2})
        net2 = net.reweighted({(1, 2): 10, (2, 3): 20})
        assert net2.edges == net.edges
        assert net2.weight(1, 2) == 10


class TestGraphQueries:
    def test_bfs_distances_on_path(self):
        net = path_graph(5, scramble_ids=False)
        d = net.bfs_distances(1)
        assert d == {1: 0, 2: 1, 3: 2, 4: 3, 5: 4}

    def test_diameter_ring(self):
        net = ring(6, scramble_ids=False)
        assert net.diameter() == 3

    def test_is_connected_subset(self):
        net = path_graph(5, scramble_ids=False)
        assert net.is_connected_subset({1, 2, 3})
        assert not net.is_connected_subset({1, 3})
        assert net.is_connected_subset(set())

    def test_non_edges(self):
        net = path_graph(3, scramble_ids=False)
        assert list(net.non_edges()) == [(1, 3)]

    def test_id_bits_positive(self):
        net = path_graph(4, scramble_ids=False)
        assert net.id_bits() >= 4  # id space = n^2 = 16

    def test_n_bound_default_and_override(self):
        net = path_graph(4, scramble_ids=False)
        assert net.n_bound == 4
        net2 = Network([1, 2], [(1, 2)], n_bound=10)
        assert net2.n_bound == 10
        with pytest.raises(ValueError, match="n_bound"):
            Network([1, 2], [(1, 2)], n_bound=1)


class TestGenerators:
    @pytest.mark.parametrize("maker,n", [
        (lambda: ring(8, seed=1), 8),
        (lambda: path_graph(9, seed=1), 9),
        (lambda: complete_graph(6, seed=1), 6),
        (lambda: star_graph(7, seed=1), 7),
        (lambda: wheel_graph(8, seed=1), 8),
        (lambda: grid_graph(3, 4, seed=1), 12),
        (lambda: random_tree_graph(11, seed=1), 11),
        (lambda: random_connected_graph(13, seed=1), 13),
        (lambda: lollipop_graph(4, 3, seed=1), 7),
        (lambda: caterpillar_graph(4, 2, seed=1), 12),
        (lambda: hypercube_graph(3, seed=1), 8),
        (lambda: theta_graph([2, 3, 4], seed=1), 8),  # 2 hubs + 1+2+3 internals
    ])
    def test_sizes(self, maker, n):
        net = maker()
        assert net.n == n

    def test_ring_degrees(self):
        net = ring(10, seed=2)
        assert all(net.degree(v) == 2 for v in net.nodes)

    def test_complete_degrees(self):
        net = complete_graph(5, seed=2)
        assert all(net.degree(v) == 4 for v in net.nodes)

    def test_tree_edge_count(self):
        net = random_tree_graph(20, seed=5)
        assert net.m == 19

    def test_random_graph_has_extra_edges(self):
        net = random_connected_graph(20, extra_edges=10, seed=5)
        assert net.m == 29

    def test_seeded_reproducibility(self):
        a = random_connected_graph(15, seed=42, weighted=True)
        b = random_connected_graph(15, seed=42, weighted=True)
        assert a.nodes == b.nodes
        assert a.edges == b.edges
        assert a.weights == b.weights

    def test_different_seeds_differ(self):
        a = random_connected_graph(15, seed=1)
        b = random_connected_graph(15, seed=2)
        assert a.nodes != b.nodes or a.edges != b.edges

    def test_scrambled_ids_not_consecutive(self):
        net = ring(12, seed=3, scramble_ids=True)
        assert set(net.nodes) != set(range(1, 13))

    def test_unscrambled_ids_consecutive(self):
        net = ring(12, seed=3, scramble_ids=False)
        assert set(net.nodes) == set(range(1, 13))

    def test_weighted_generators_have_distinct_weights(self):
        net = random_connected_graph(10, seed=7, weighted=True)
        ws = list(net.weights.values())
        assert len(set(ws)) == len(ws)

    def test_grid_structure(self):
        net = grid_graph(3, 3, scramble_ids=False)
        # corner has degree 2, center degree 4
        degs = sorted(net.degree(v) for v in net.nodes)
        assert degs == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_hypercube_degrees(self):
        net = hypercube_graph(4, seed=0)
        assert all(net.degree(v) == 4 for v in net.nodes)

    def test_theta_graph_hub_degrees(self):
        net = theta_graph([2, 2, 2], scramble_ids=False)
        hubs = [v for v in net.nodes if net.degree(v) == 3]
        assert len(hubs) == 2

    def test_caterpillar_spine(self):
        net = caterpillar_graph(5, 3, scramble_ids=False)
        assert net.n == 20
        assert net.m == 19  # a tree

    def test_lollipop_tail(self):
        net = lollipop_graph(5, 4, scramble_ids=False)
        # tail end is degree 1
        assert min(net.degree(v) for v in net.nodes) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            star_graph(1)
        with pytest.raises(ValueError):
            theta_graph([1, 1])

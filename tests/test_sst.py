"""Self-stabilization tests for the spanning-tree/leader-election layer.

The protocol must reach its unique legal silent configuration from *every*
initial configuration, under *every* scheduler — including adversarially
planted ghost roots (claims of identities smaller than every real one).
"""

import pytest

from repro.core.sst import SpanningTreeProtocol
from repro.graphs import (
    grid_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    ring,
    star_graph,
)
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    NONE,
    Simulator,
    SynchronousScheduler,
    corrupt_random_nodes,
    max_register_bits,
    random_configuration,
)

NETS = [
    path_graph(9, seed=1),
    ring(10, seed=2),
    star_graph(9, seed=3),
    grid_graph(3, 4, seed=4),
    lollipop_graph(4, 5, seed=5),
    random_connected_graph(14, seed=6),
]

IDS = [f"g{i}n{n.n}" for i, n in enumerate(NETS)]


class TestConvergence:
    @pytest.mark.parametrize("net", NETS, ids=IDS)
    def test_from_default_configuration(self, net):
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto)
        result = sim.run(max_rounds=10 * net.n + 20)
        assert result.silent
        assert proto.is_legal(net, sim.config)

    @pytest.mark.parametrize("net", NETS, ids=IDS)
    def test_from_arbitrary_configurations(self, net):
        proto = SpanningTreeProtocol()
        for seed in range(6):
            cfg = random_configuration(net, proto, seed=seed)
            sim = Simulator(net, proto, config=cfg)
            result = sim.run(max_rounds=20 * net.n + 50)
            assert result.silent, seed
            assert proto.is_legal(net, sim.config), seed

    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_under_every_scheduler(self, name):
        net = random_connected_graph(12, seed=7)
        proto = SpanningTreeProtocol()
        cfg = random_configuration(net, proto, seed=8)
        sched = ALL_SCHEDULER_FACTORIES[name](seed=9)
        sim = Simulator(net, proto, sched, config=cfg)
        result = sim.run(max_rounds=3000)
        assert result.silent, name
        assert proto.is_legal(net, sim.config), name

    def test_ghost_root_flushed(self):
        """A planted claim smaller than every real identity must be flushed
        through the distance bound."""
        net = random_connected_graph(12, seed=10)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto)
        sim.run(max_rounds=10 * net.n)
        ghost = 0  # smaller than every identity (ids are >= 1)
        victims = list(net.nodes)[:4]
        for i, v in enumerate(victims):
            sim.overwrite(v, {"rid": ghost, "d": i, "par": NONE})
        result = sim.run(max_rounds=20 * net.n + 50)
        assert result.silent
        assert proto.is_legal(net, sim.config)

    def test_fault_recovery(self):
        net = random_connected_graph(13, seed=11)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto)
        sim.run(max_rounds=10 * net.n)
        for k in (1, 3, 6):
            corrupted, _ = corrupt_random_nodes(net, sim.spec, sim.config,
                                                k=k, seed=k)
            sim2 = Simulator(net, proto, config=corrupted)
            result = sim2.run(max_rounds=20 * net.n + 50)
            assert result.silent
            assert proto.is_legal(net, sim2.config)

    def test_silence_certified(self):
        net = ring(8, seed=12)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto)
        sim.run(max_rounds=10 * net.n)
        assert sim.confirm_silent()


class TestComplexity:
    def test_rounds_linear_on_paths(self):
        """Stabilization from defaults takes O(n) rounds (t_label = O(n))."""
        rounds = []
        for n in (8, 16, 32):
            net = path_graph(n, seed=13)
            sim = Simulator(net, SpanningTreeProtocol(), SynchronousScheduler())
            result = sim.run(max_rounds=10 * n)
            rounds.append(result.rounds)
        assert rounds[2] <= 4 * rounds[1]
        assert rounds[1] <= 4 * max(rounds[0], 1)

    def test_register_bits_logarithmic(self):
        import math
        for n in (8, 16, 32, 64):
            net = random_connected_graph(n, seed=14)
            proto = SpanningTreeProtocol()
            sim = Simulator(net, proto)
            sim.run(max_rounds=10 * n + 50)
            bits = max_register_bits(net, sim.spec, sim.config)
            assert bits <= 4 * math.log2(net.id_space) + 6

    def test_bfs_distances_in_stable_state(self):
        net = lollipop_graph(5, 6, seed=15)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto)
        sim.run(max_rounds=20 * net.n)
        dist = net.bfs_distances(net.min_id)
        for v in net.nodes:
            assert sim.config[v]["d"] == dist[v]

"""The slot-indexed state plane, pinned to the dict plane.

Three pillars:

* **Schema/view contract**: a :class:`StateSchema` compiles a
  ``RegisterSpec`` into a stable name → slot table, and a
  :class:`SlotState` is a *zero-copy* MutableMapping over one slot row —
  equal to the corresponding plain dict, writable through either plane,
  with the layout fixed.
* **Slot view ≡ dict view, propertywise**: on random (adversarial)
  configurations, encoding through the schema and reading back through
  the Mapping views reproduces the boundary dicts exactly — before,
  during, and after execution.
* **Dict-path ≡ slot-path, golden**: entire executions — every protocol
  family of the tier-1 suite under every daemon — produce bit-identical
  ``(rounds, moves, final configuration)`` whether the engine runs the
  compiled ``fast_step_slots`` rules or is forced onto the name-keyed
  ``fast_step``/``step`` fallback (``use_slot_rules=False``).
"""

import hashlib

import pytest

from repro.baselines.compact_mst import CompactNonSilentMST
from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.core.tasks import (
    guided_bfs_protocol,
    guided_mdst_protocol,
    guided_mst_protocol,
)
from repro.graphs import random_connected_graph
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    NONE,
    Protocol,
    RegisterSpec,
    Simulator,
    SlotState,
    counter_field,
    random_configuration,
)

PROTOCOLS = {
    "sst": (SpanningTreeProtocol, False),
    "malleable-tree": (MalleableTreeProtocol, False),
    "guided-bfs": (guided_bfs_protocol, False),
    "guided-mst": (guided_mst_protocol, True),
    "guided-mdst": (guided_mdst_protocol, False),
}


def _hash(config) -> str:
    canon = repr(tuple(sorted((v, tuple(sorted(s.items())))
                              for v, s in config.items())))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


class TestStateSchema:
    def _schema(self):
        net = random_connected_graph(6, seed=1)
        proto = MalleableTreeProtocol()
        spec = proto.register_spec(net)
        return net, spec, spec.schema()

    def test_compile_names_to_slots(self):
        _, spec, schema = self._schema()
        assert schema.names == spec.names
        assert schema.width == len(spec.names)
        for i, name in enumerate(spec.names):
            assert schema.slot(name) == i
        with pytest.raises(KeyError):
            schema.slot("nope")

    def test_schema_cached_per_spec(self):
        _, spec, schema = self._schema()
        assert spec.schema() is schema

    def test_row_roundtrip_and_missing_field(self):
        net, spec, schema = self._schema()
        state = spec.default_state(net, 3)
        row = schema.row_of(state)
        assert schema.to_dict(row) == state
        assert schema.default_row(net, 3) == row
        state.pop("mark")
        with pytest.raises(KeyError):
            schema.row_of(state)

    def test_extra_boundary_fields_are_ignored(self):
        net, spec, schema = self._schema()
        state = spec.default_state(net, 2)
        state["bt"] = ("assigner-only", "decoration")
        assert schema.to_dict(schema.row_of(state)) == {
            k: v for k, v in state.items() if k != "bt"}


class TestSlotStateView:
    def _view(self):
        net = random_connected_graph(6, seed=1)
        spec = MalleableTreeProtocol().register_spec(net)
        schema = spec.schema()
        state = spec.default_state(net, 4)
        row = schema.row_of(state)
        return schema, state, row, schema.view(row)

    def test_mapping_protocol_matches_dict(self):
        _, state, row, view = self._view()
        assert view == state and state == dict(view)
        assert len(view) == len(state)
        assert set(view) == set(state)
        assert sorted(view.items()) == sorted(state.items())
        assert list(view.keys()) == list(state.keys())
        assert view["rid"] == state["rid"]
        assert view.get("rid") == state["rid"]
        assert view.get("nope", 42) == 42
        assert "rid" in view and "nope" not in view
        assert view.to_dict() == state and view.copy() == state

    def test_zero_copy_both_planes(self):
        schema, _, row, view = self._view()
        row[schema.slot("d")] = 7
        assert view["d"] == 7
        view["s"] = 9
        assert row[schema.slot("s")] == 9

    def test_fixed_layout(self):
        _, _, _, view = self._view()
        with pytest.raises(KeyError):
            view["nope"] = 1
        with pytest.raises(TypeError):
            del view["rid"]

    def test_equality_is_content_based(self):
        schema, state, row, view = self._view()
        other = schema.view(list(row))
        assert view == other
        other["mark"] = True
        assert view != other
        assert view != {**state, "mark": "junk"}
        assert view != {k: v for k, v in state.items() if k != "mark"}
        assert view != 3

    def test_junk_values_are_storable(self):
        _, _, _, view = self._view()
        view["par"] = [1]        # unhashable junk a fault may write
        view["d"] = -0.5
        assert view["par"] == [1] and view["d"] == -0.5


class TestSlotViewEqualsDictView:
    """Property: the Mapping plane reproduces the boundary dicts exactly."""

    @pytest.mark.parametrize("proto_name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_random_configurations(self, proto_name, seed):
        factory, weighted = PROTOCOLS[proto_name]
        net = random_connected_graph(10, seed=31, weighted=weighted)
        proto = factory()
        cfg = random_configuration(net, proto, seed=seed)
        sim = Simulator(net, proto, config=cfg)
        schema = sim.schema
        for v in net.nodes:
            view = sim.config[v]
            assert isinstance(view, SlotState)
            # slot view == dict view, fieldwise and wholesale
            assert view == cfg[v] and dict(view) == cfg[v]
            for i, name in enumerate(schema.names):
                assert view[name] is view.row[i]
        # ... and the engine's raw rows alias the views (zero-copy)
        for v in net.nodes:
            assert sim.config[v].row is sim._state[v]

    def test_views_track_execution(self):
        net = random_connected_graph(12, seed=3)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto,
                        config=random_configuration(net, proto, seed=5))
        sim.run(max_rounds=1_000)
        dist = net.bfs_distances(net.min_id)
        for v in net.nodes:
            assert sim.config[v]["d"] == dist[v]
            assert sim.config[v].row[sim.schema.slot("d")] == dist[v]

    def test_overwrite_reaches_both_planes(self):
        net = random_connected_graph(8, seed=2)
        sim = Simulator(net, SpanningTreeProtocol())
        sim.run(max_rounds=100)
        victim = max(net.nodes)
        sim.overwrite(victim, {"d": 99, "par": NONE})
        assert sim.config[victim]["d"] == 99
        assert sim._state[victim][sim.schema.slot("d")] == 99
        assert sim.enabled_nodes() == sim.rescan_enabled()


class TestDictPathEqualsSlotPath:
    """Golden bit-identity: full executions on the compiled slot rules
    reproduce the name-keyed fallback engine, over the whole
    protocol × daemon grid."""

    @pytest.mark.parametrize("sched_name", sorted(ALL_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("proto_name", sorted(PROTOCOLS))
    def test_full_run_bit_identity(self, proto_name, sched_name):
        factory, weighted = PROTOCOLS[proto_name]
        net = random_connected_graph(8, seed=21, weighted=weighted)
        outcomes = []
        for use_slots in (True, False):
            proto = factory()  # fresh instance: oracle memos are per-run
            cfg = random_configuration(net, proto, seed=22)
            sim = Simulator(net, proto,
                            ALL_SCHEDULER_FACTORIES[sched_name](23),
                            config=cfg, use_slot_rules=use_slots)
            assert (sim._slot_rule is not None) == use_slots
            result = sim.run(max_rounds=50_000)
            assert result.silent
            outcomes.append((result.rounds, result.moves, _hash(sim.config)))
        assert outcomes[0] == outcomes[1], (
            f"{proto_name} under {sched_name}: slot path diverged from "
            f"the dict path")

    @pytest.mark.parametrize("sched_name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_compact_mst_slot_rule_bit_identity(self, sched_name):
        """The non-silent baseline never reaches silence (and unfair
        central daemons can even starve its rounds), so its golden
        comparison pins a fixed *move*-budget prefix of the execution."""
        net = random_connected_graph(8, seed=21, weighted=True)
        outcomes = []
        for use_slots in (True, False):
            proto = CompactNonSilentMST()
            cfg = random_configuration(net, proto, seed=22)
            sim = Simulator(net, proto,
                            ALL_SCHEDULER_FACTORIES[sched_name](23),
                            config=cfg, use_slot_rules=use_slots)
            assert (sim._slot_rule is not None) == use_slots
            moved = sim.run_steps(max_moves=256)
            assert moved >= 256  # perpetual motion, by design
            outcomes.append((sim.moves, _hash(sim.config)))
        assert outcomes[0] == outcomes[1], (
            f"compact-mst under {sched_name}: slot path diverged from "
            f"the dict path")

    def test_protocols_without_slot_rules_fall_back(self):
        class DictOnlyUnison(Protocol):
            """Implements only ``step`` — exercises the fallback plane."""

            name = "dict-only-unison"

            def register_spec(self, net):
                return RegisterSpec([counter_field("tok", lambda n: 2)])

            def step(self, view):
                my = view["tok"]
                if any(view.nbr(u)["tok"] < my for u in view.neighbors):
                    return None
                return {"tok": (my + 1) % 3}

        net = random_connected_graph(8, seed=21, weighted=True)
        sim = Simulator(net, DictOnlyUnison())
        assert sim._slot_rule is None  # default fast_step_slots → None
        sim.run_round()
        assert sim.enabled_nodes() == sim.rescan_enabled()


class TestBatchAwareStepping:
    """Synchronous rounds raise the all-dirty flag instead of per-write
    neighborhood bookkeeping — with identical semantics."""

    def test_bulk_batches_engage_the_flag(self):
        net = random_connected_graph(32, seed=9)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto,
                        config=random_configuration(net, proto, seed=4))
        sim.run_round()  # an arbitrary start enables ~everyone
        assert sim._dirty_all  # the synchronous batch went through the flag
        assert sim.enabled_nodes() == sim.rescan_enabled()
        assert not sim._dirty_all  # refresh consumed it

    def test_synchronous_run_matches_rescan_every_round(self):
        net = random_connected_graph(32, seed=9)
        proto = SpanningTreeProtocol()
        sim = Simulator(net, proto,
                        config=random_configuration(net, proto, seed=4))
        while sim.run_round():
            assert sim.enabled_nodes() == sim.rescan_enabled()
        assert sim.is_silent()
        assert proto.is_legal(net, sim.config)

"""The incremental enabled-set engine, cross-checked against first principles.

Three pillars:

* **Incremental ≡ rescan**: before *every* scheduler selection (and across
  mid-run fault injections) the engine's incrementally maintained enabled
  set must equal a from-scratch, cache-free rescan of the whole network —
  for every protocol family of the tier-1 suite under every daemon.
* **Golden determinism**: seeded runs must reproduce the exact
  (rounds, moves, final configuration) triples recorded with the
  pre-refactor full-rescan engine, pinning down that the rewrite changed
  the complexity of stepping, not the semantics.
* **Scheduler path equivalence**: a daemon driven through the incremental
  reset/notify hooks must pick exactly what a fresh instance picks from
  plain sorted lists (the ``select(enabled)`` compatibility path).
"""

import hashlib
import random

import pytest

from repro.baselines.compact_mst import CompactNonSilentMST
from repro.baselines.dim_bfs import AdHocBFSProtocol
from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.core.tasks import (
    guided_bfs_protocol,
    guided_mdst_protocol,
    guided_mst_protocol,
)
from repro.graphs import random_connected_graph
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    EnabledSet,
    Scheduler,
    Simulator,
    StarvingScheduler,
    inject_random_faults,
    random_configuration,
)

# name -> (factory, weighted network needed, silent protocol)
PROTOCOLS = {
    "sst": (SpanningTreeProtocol, False, True),
    "adhoc-bfs": (AdHocBFSProtocol, False, True),
    "malleable-tree": (MalleableTreeProtocol, False, True),
    "guided-bfs": (guided_bfs_protocol, False, True),
    "guided-mst": (guided_mst_protocol, True, True),
    "guided-mdst": (guided_mdst_protocol, False, True),
    "compact-mst": (CompactNonSilentMST, True, False),
}

#: compact-mst is never silent: a deterministic central daemon re-activates
#: the same extremal identity forever, so the Section II-A round never
#: completes — a livelock of the daemon/protocol pair, not of the engine.
#: (The former malleable-tree/central-max-id exclusions were removed when
#: the election layer gained its adoption-soundness guard and the size
#: overflow became a prune instead of a reset; every malleable-based
#: protocol now stabilizes under the max-id adversary too.)
EXCLUDED = {("compact-mst", "central-max-id"),
            ("compact-mst", "central-min-id")}


class CrossCheckingScheduler(Scheduler):
    """Wraps a daemon; asserts incremental enabled set == full rescan
    before every selection, then delegates (forwarding the incremental
    hooks, so mirror-keeping schedulers stay exercised too)."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"xcheck({inner.name})"
        self.sim: Simulator | None = None
        self.checks = 0

    def reset(self, enabled: EnabledSet) -> None:
        self.inner.reset(enabled)

    def notify(self, added, removed) -> None:
        self.inner.notify(added, removed)

    def select(self, enabled):
        assert isinstance(enabled, EnabledSet)
        assert list(enabled) == self.sim.rescan_enabled(), (
            "incrementally maintained enabled set diverged from a "
            "from-scratch rescan")
        self.checks += 1
        return self.inner.select(enabled)


class TestIncrementalEqualsRescan:
    @pytest.mark.parametrize("sched_name", sorted(ALL_SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("proto_name", sorted(PROTOCOLS))
    def test_every_step_and_across_faults(self, proto_name, sched_name):
        if (proto_name, sched_name) in EXCLUDED:
            pytest.skip("never-silent protocol + deterministic central "
                        "daemon: the Section II-A round cannot complete")
        factory, weighted, silent = PROTOCOLS[proto_name]
        net = random_connected_graph(8, seed=21, weighted=weighted)
        proto = factory()
        cfg = random_configuration(net, proto, seed=22)
        sched = CrossCheckingScheduler(ALL_SCHEDULER_FACTORIES[sched_name](23))
        sim = Simulator(net, proto, sched, config=cfg)
        sched.sim = sim

        if silent:
            assert sim.run(max_rounds=50_000).silent
        else:
            for _ in range(6):
                sim.run_round()

        # transient faults feed the dirty set through Simulator.overwrite;
        # the incremental state must stay coherent without a rebuild
        victims = inject_random_faults(sim, k=3, seed=24)
        assert len(victims) == 3
        assert sim.enabled_nodes() == sim.rescan_enabled()

        if silent:
            assert sim.run(max_rounds=50_000).silent
        else:
            for _ in range(4):
                sim.run_round()

        assert sim.enabled_nodes() == sim.rescan_enabled()
        if silent:
            assert sched.checks > 0  # the cross-check actually ran


# (rounds, moves, sha256[:16] of the canonical final configuration).
# The sst rows are the values recorded with the pre-refactor engine (full
# rescan before every select) at commit 91f0447; the malleable-tree rows
# were re-recorded — with incremental == rescan verified at every select —
# after the election-layer livelock fix deliberately changed that
# protocol's transition function (adoption-soundness guard + size-overflow
# prune), which also made the central-max-id row recordable at all.
GOLDEN = {
    ("sst", "central-max-id"): (4, 142, "4146ee37f1913c53"),
    ("sst", "central-min-id"): (1, 19, "a2975d9428dfb0c5"),
    ("sst", "central-random"): (2, 42, "feabaa4470071d9b"),
    ("sst", "central-round-robin"): (2, 20, "23367e4919a51890"),
    ("sst", "distributed-random"): (1, 26, "feabaa4470071d9b"),
    ("sst", "starving"): (2, 42, "feabaa4470071d9b"),
    ("sst", "synchronous"): (4, 43, "a2975d9428dfb0c5"),
    ("malleable-tree", "central-max-id"): (3, 322, "49ef0a1f506693e5"),
    ("malleable-tree", "central-min-id"): (9, 241, "33b4bb1e344d330b"),
    ("malleable-tree", "central-random"): (4, 62, "c5dc0337c77eeed2"),
    ("malleable-tree", "central-round-robin"): (5, 31, "1799bd378c4c6067"),
    ("malleable-tree", "distributed-random"): (5, 60, "3242f4c91e5d159a"),
    ("malleable-tree", "starving"): (3, 63, "377dc2121412ba82"),
    ("malleable-tree", "synchronous"): (6, 55, "1491eea2b2bd63d7"),
}


def _canonical_hash(config) -> str:
    canon = repr(tuple(sorted((v, tuple(sorted(s.items())))
                              for v, s in config.items())))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


class TestGoldenDeterminism:
    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_seeded_run_reproduces_pre_refactor_result(self, key):
        proto_name, sched_name = key
        proto = {"sst": SpanningTreeProtocol,
                 "malleable-tree": MalleableTreeProtocol}[proto_name]()
        net = random_connected_graph(16, seed=5)
        cfg = random_configuration(net, proto, seed=9)
        sim = Simulator(net, proto, ALL_SCHEDULER_FACTORIES[sched_name](11),
                        config=cfg)
        result = sim.run(max_rounds=100_000)
        got = (result.rounds, result.moves, _canonical_hash(sim.config))
        assert got == GOLDEN[key], (
            f"{key}: seeded execution diverged from the pre-refactor engine")


class TestSchedulerPathEquivalence:
    """Incremental reset/notify-driven selection == plain-list selection."""

    def _churn(self, factory, steps=150, seed=77):
        """Drive two instances of the same daemon through an identical
        random churn of the enabled set: one via EnabledSet + hooks, one
        via plain sorted lists."""
        rng = random.Random(seed)
        universe = list(range(1, 48))
        current = set(rng.sample(universe, 14))
        inc, plain = factory(5), factory(5)
        es = EnabledSet(current)
        inc.reset(es)
        for _ in range(steps):
            assert inc.select(es) == plain.select(sorted(current))
            adds = [v for v in rng.sample(universe, 3) if v not in current]
            removable = sorted(current - set(adds))
            removes = rng.sample(removable, min(2, max(0, len(removable) - 1)))
            for v in adds:
                current.add(v)
                es.add(v)
            for v in removes:
                current.remove(v)
                es.discard(v)
            inc.notify(adds, removes)

    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_all_daemons(self, name):
        self._churn(ALL_SCHEDULER_FACTORIES[name])

    def test_starving_with_victim_set(self):
        victims = {3, 9, 17, 40}
        self._churn(lambda seed: StarvingScheduler(victims, seed))


class TestEnabledSet:
    def test_sorted_sequence_and_set_semantics(self):
        es = EnabledSet([5, 1, 9])
        assert list(es) == [1, 5, 9]
        assert es[0] == 1 and es[-1] == 9
        assert 5 in es and 4 not in es
        assert len(es) == 3
        assert es.index(5) == 1

    def test_add_discard_idempotent(self):
        es = EnabledSet()
        assert es.add(4) and not es.add(4)
        assert es.add(2)
        assert list(es) == [2, 4]
        assert es.discard(4) and not es.discard(4)
        assert list(es) == [2]
        assert not es.discard(99)

    def test_clear_and_bool(self):
        es = EnabledSet([1])
        assert es
        es.clear()
        assert not es and len(es) == 0

    def test_index_of_missing_raises(self):
        with pytest.raises(ValueError):
            EnabledSet([1]).index(2)

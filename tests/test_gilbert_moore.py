"""Property tests for the Gilbert–Moore alphabetic codes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.labeling.gilbert_moore import code_lengths, gilbert_moore_code


def is_prefix_free(codes):
    for i, a in enumerate(codes):
        for j, b in enumerate(codes):
            if i != j and b.startswith(a):
                return False
    return True


class TestGilbertMoore:
    def test_empty(self):
        assert gilbert_moore_code([]) == []

    def test_single_symbol(self):
        codes = gilbert_moore_code([5])
        assert len(codes) == 1
        assert len(codes[0]) == 1  # ceil(log2(1)) + 1

    def test_uniform_weights(self):
        codes = gilbert_moore_code([1, 1, 1, 1])
        assert is_prefix_free(codes)
        assert all(len(c) == 3 for c in codes)  # ceil(log2 4) + 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gilbert_moore_code([1, 0, 2])

    def test_lengths_formula(self):
        weights = [1, 2, 4, 8, 1]
        total = sum(weights)
        for w, length in zip(weights, code_lengths(weights)):
            assert length == math.ceil(math.log2(total / w)) + 1

    def test_heavy_symbol_gets_short_code(self):
        codes = gilbert_moore_code([1, 100, 1])
        assert len(codes[1]) < len(codes[0])

    @settings(max_examples=200, deadline=None)
    @given(weights=st.lists(st.integers(1, 1000), min_size=1, max_size=20))
    def test_prefix_free_property(self, weights):
        codes = gilbert_moore_code(weights)
        assert is_prefix_free(codes)

    @settings(max_examples=200, deadline=None)
    @given(weights=st.lists(st.integers(1, 1000), min_size=2, max_size=20))
    def test_alphabetic_property(self, weights):
        """Codewords increase lexicographically with the symbol index."""
        codes = gilbert_moore_code(weights)
        for a, b in zip(codes, codes[1:]):
            assert a < b

    @settings(max_examples=100, deadline=None)
    @given(weights=st.lists(st.integers(1, 10_000), min_size=1, max_size=30))
    def test_length_bound_property(self, weights):
        total = sum(weights)
        for w, code in zip(weights, gilbert_moore_code(weights)):
            assert len(code) <= math.log2(total / w) + 2 + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(weights=st.lists(st.integers(1, 100), min_size=1, max_size=15))
    def test_distinct_codewords(self, weights):
        codes = gilbert_moore_code(weights)
        assert len(set(codes)) == len(codes)

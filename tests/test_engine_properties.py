"""Property-based tests for the execution engine itself.

These pin down the state-model semantics everything else relies on:
determinism per seed, write-locality of the proposal cache, and the
round-accounting definition of Section II-A.
"""

from hypothesis import given, settings, strategies as st

from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.graphs import random_connected_graph
from repro.runtime import (
    CentralRandomScheduler,
    Simulator,
    SynchronousScheduler,
    random_configuration,
)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_runs_are_deterministic(seed):
    """Same network, protocol, scheduler seed and initial configuration
    must produce identical executions."""
    net = random_connected_graph(9, seed=seed % 60)
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=seed)
    results = []
    for _ in range(2):
        sim = Simulator(net, proto, CentralRandomScheduler(seed=seed),
                        config=cfg)
        r = sim.run(max_rounds=5000)
        results.append((r.rounds, r.moves,
                        tuple(sorted((v, tuple(sorted(s.items())))
                                     for v, s in sim.config.items()))))
    assert results[0] == results[1]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_claims_independent_of_scheduler(seed):
    """SST's stable (rid, d) values are unique (root identity and BFS
    distances); parent choices may differ between equally-short parents
    depending on scheduling history, so only the claims are compared."""
    net = random_connected_graph(8, seed=seed % 40)
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=seed)
    finals = []
    for sched in (SynchronousScheduler(), CentralRandomScheduler(seed=seed)):
        sim = Simulator(net, proto, sched, config=cfg)
        sim.run(max_rounds=5000)
        assert proto.is_legal(net, sim.config)
        finals.append({v: (s["rid"], s["d"]) for v, s in sim.config.items()})
    assert finals[0] == finals[1]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_silent_configurations_are_fixed_points(seed):
    """Once silent, re-simulating from the final configuration performs
    zero rounds and zero moves (silence = terminal, Section II-A)."""
    net = random_connected_graph(8, seed=seed % 40)
    proto = MalleableTreeProtocol()
    cfg = random_configuration(net, proto, seed=seed)
    sim = Simulator(net, proto, config=cfg)
    sim.run(max_rounds=20_000)
    sim2 = Simulator(net, proto, config=sim.config)
    r2 = sim2.run(max_rounds=10)
    assert r2.rounds == 0 and r2.moves == 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_moves_bounded_by_rounds_times_n(seed):
    """Under a central daemon each round performs at least one and at most
    a bounded number of moves; moves never exceed the per-round budget."""
    net = random_connected_graph(8, seed=seed % 40)
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=seed)
    sim = Simulator(net, proto, CentralRandomScheduler(seed=seed), config=cfg)
    r = sim.run(max_rounds=5000)
    assert r.moves >= r.rounds  # a round needs at least one move

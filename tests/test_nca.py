"""Tests for the NCA labeling (Section V, ref [6]), its PLS (Lemma 5.1),
and the fundamental-cycle membership predicate."""

import math

import pytest
from dataclasses import replace
from hypothesis import given, settings, strategies as st

from repro.core import bfs_tree, random_spanning_tree
from repro.core.cycles import on_chain_segment, on_fundamental_cycle
from repro.graphs import (
    caterpillar_graph,
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_tree_graph,
    ring,
    star_graph,
    theta_graph,
)
from repro.labeling.nca import (
    NCALabel,
    NCALabeling,
    label_is_ancestor,
    nca_of_labels,
)
from repro.labeling.nca_pls import NCAPLS

TREES = [
    ("path", path_graph(17, seed=1)),
    ("star", star_graph(15, seed=2)),
    ("caterpillar", caterpillar_graph(6, 2, seed=3)),
    ("random-tree", random_tree_graph(25, seed=4)),
]

GRAPHS = [
    ("ring", ring(10, seed=5)),
    ("grid", grid_graph(4, 4, seed=6)),
    ("theta", theta_graph([3, 4, 5], seed=7)),
    ("random", random_connected_graph(20, seed=8)),
    ("complete", complete_graph(8, seed=9)),
]


class TestNCALabelStructure:
    @pytest.mark.parametrize("name,net", TREES, ids=[t[0] for t in TREES])
    def test_segment_count_logarithmic(self, name, net):
        tree = bfs_tree(net)
        scheme = NCALabeling(net, tree)
        bound = math.floor(math.log2(net.n)) + 1
        for v in net.nodes:
            assert len(scheme.labels[v].segments) <= bound

    def test_root_label(self):
        net = random_tree_graph(10, seed=10)
        tree = bfs_tree(net)
        scheme = NCALabeling(net, tree)
        assert scheme.labels[tree.root] == NCALabel(((tree.root, 0),))

    def test_heavy_child_is_largest(self):
        net = random_connected_graph(18, seed=11)
        tree = random_spanning_tree(net, seed=12)
        scheme = NCALabeling(net, tree)
        sizes = tree.subtree_sizes()
        for v in net.nodes:
            kids = tree.children(v)
            if kids:
                assert sizes[scheme.heavy[v]] == max(sizes[c] for c in kids)

    def test_node_of_inverts_labels(self):
        net = random_connected_graph(16, seed=13)
        tree = random_spanning_tree(net, seed=14)
        scheme = NCALabeling(net, tree)
        for v in net.nodes:
            assert scheme.node_of(scheme.labels[v]) == v

    def test_labels_distinct(self):
        net = random_tree_graph(30, seed=15)
        tree = bfs_tree(net)
        scheme = NCALabeling(net, tree)
        assert len(set(scheme.labels.values())) == net.n

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            NCALabel(())


class TestNCAComputation:
    @pytest.mark.parametrize("name,net", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_nca_matches_oracle_all_pairs(self, name, net):
        for seed in (0, 1):
            tree = random_spanning_tree(net, seed=seed)
            scheme = NCALabeling(net, tree)
            for u in net.nodes:
                for v in net.nodes:
                    assert scheme.nca(u, v) == tree.nca(u, v), (u, v)

    def test_ancestor_predicate(self):
        net = random_connected_graph(15, seed=16)
        tree = random_spanning_tree(net, seed=17)
        scheme = NCALabeling(net, tree)
        for a in net.nodes:
            for d in net.nodes:
                expected = tree.is_ancestor(a, d)
                got = label_is_ancestor(scheme.labels[a], scheme.labels[d])
                assert got == expected, (a, d)

    def test_nca_is_pure_label_function(self):
        """nca_of_labels uses only the two labels (no tree access)."""
        net = random_tree_graph(12, seed=18)
        tree = bfs_tree(net)
        scheme = NCALabeling(net, tree)
        nodes = list(net.nodes)
        u, v = nodes[2], nodes[-2]
        lab = nca_of_labels(scheme.labels[u], scheme.labels[v])
        assert scheme.node_of(lab) == tree.nca(u, v)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_nca_property_random_trees(self, seed):
        net = random_tree_graph(14, seed=seed % 200)
        tree = bfs_tree(net)
        scheme = NCALabeling(net, tree)
        nodes = list(net.nodes)
        u = nodes[seed % len(nodes)]
        v = nodes[(seed * 7 + 3) % len(nodes)]
        assert scheme.nca(u, v) == tree.nca(u, v)


class TestEncodedSize:
    def test_encoded_bits_logarithmic_across_shapes(self):
        """The headline measurement of ref [6]: O(log n)-bit labels on every
        tree shape, including the adversarial ones (paths, caterpillars)."""
        for maker in (
            lambda n, s: path_graph(n, seed=s),
            lambda n, s: star_graph(n, seed=s),
            lambda n, s: random_tree_graph(n, seed=s),
            lambda n, s: caterpillar_graph(n // 3, 2, seed=s),
        ):
            for n in (16, 64, 256):
                net = maker(n, 1)
                tree = bfs_tree(net)
                scheme = NCALabeling(net, tree)
                max_bits = scheme.max_encoded_bits()
                assert max_bits <= 8 * math.log2(net.n) + 16, (n, max_bits)

    def test_encoded_bits_grow_slowly(self):
        sizes = []
        for n in (32, 128, 512):
            net = random_tree_graph(n, seed=2)
            scheme = NCALabeling(net, bfs_tree(net))
            sizes.append(scheme.max_encoded_bits())
        # doubling n twice should add O(1) + O(log) bits, not multiply them
        assert sizes[2] <= sizes[0] + 40

    def test_encoded_labels_nonempty(self):
        net = random_tree_graph(9, seed=3)
        scheme = NCALabeling(net, bfs_tree(net))
        assert all(scheme.encoded_bits(v) >= 1 for v in net.nodes)


class TestNCAPLS:
    """Lemma 5.1: the PLS for the NCA labeling."""

    def test_prover_accepted(self):
        for name, net in GRAPHS:
            tree = random_spanning_tree(net, seed=19)
            pls = NCAPLS()
            labels = pls.prove(net, tree)
            res = pls.verify(net, labels)
            assert res.accepted, (name, res.rejecting_nodes)

    def test_wrong_lambda_rejected(self):
        net = random_connected_graph(14, seed=20)
        tree = random_spanning_tree(net, seed=21)
        pls = NCAPLS()
        labels = pls.prove(net, tree)
        victim = [v for v in net.nodes if v != tree.root][0]
        bad = dict(labels)
        lam = bad[victim].lam
        forged = NCALabel(lam.segments[:-1] + ((lam.final_apex,
                                                lam.final_depth + 1),))
        bad[victim] = replace(bad[victim], lam=forged)
        assert not pls.verify(net, bad)

    def test_wrong_heavy_child_rejected(self):
        net = star_graph(8, seed=22)
        tree = bfs_tree(net)
        pls = NCAPLS()
        labels = pls.prove(net, tree)
        hub = max(net.nodes, key=lambda v: len(tree.children(v)))
        kids = tree.children(hub)
        assert len(kids) >= 2
        wrong = [c for c in kids if c != labels[hub].hv][0]
        bad = dict(labels)
        bad[hub] = replace(bad[hub], hv=wrong)
        assert not pls.verify(net, bad)

    def test_wrong_size_rejected(self):
        net = random_connected_graph(12, seed=23)
        tree = random_spanning_tree(net, seed=24)
        pls = NCAPLS()
        labels = pls.prove(net, tree)
        v = list(net.nodes)[5]
        bad = dict(labels)
        bad[v] = replace(bad[v], s=bad[v].s + 1)
        assert not pls.verify(net, bad)

    def test_consistently_shifted_labels_rejected(self):
        """Even a *globally consistent* forgery (everyone shifts the root
        apex) is caught: the root's base case anchors the derivation."""
        net = path_graph(6, seed=25)
        tree = bfs_tree(net)
        pls = NCAPLS()
        labels = pls.prove(net, tree)
        fake_root_apex = max(net.nodes)

        def shift(lam: NCALabel) -> NCALabel:
            (a0, d0), *rest = lam.segments
            return NCALabel(((fake_root_apex, d0), *rest))

        bad = {v: replace(lab, lam=shift(lab.lam)) for v, lab in labels.items()}
        assert not pls.verify(net, bad)

    def test_certificate_bits_logarithmic(self):
        pls = NCAPLS()
        for n in (16, 64, 256):
            net = random_tree_graph(n, seed=26)
            tree = bfs_tree(net)
            labels = pls.prove(net, tree)
            bits = pls.max_label_bits(net, labels)
            assert bits <= 14 * math.log2(net.id_space) + 40


class TestCycleMembership:
    """Section V: x in C decided from labels alone."""

    @pytest.mark.parametrize("name,net", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_predicate_matches_oracle(self, name, net):
        tree = random_spanning_tree(net, seed=27)
        scheme = NCALabeling(net, tree)
        for e in tree.non_tree_edges():
            u, v = e
            cycle = set(tree.fundamental_cycle(e))
            for x in net.nodes:
                got = on_fundamental_cycle(
                    scheme.labels[x], scheme.labels[u], scheme.labels[v])
                assert got == (x in cycle), (e, x)

    def test_chain_segment_predicate(self):
        net = random_connected_graph(16, seed=28)
        tree = random_spanning_tree(net, seed=29)
        scheme = NCALabeling(net, tree)
        for e in tree.non_tree_edges()[:4]:
            for f in tree.fundamental_cycle_edges(e):
                fx, fy = f
                top = fx if tree.parent(fx) == fy else fy
                detached = tree.subtree_nodes(top)
                a = e[0] if e[0] in detached else e[1]
                # the chain: path from a up to top
                expected = set()
                y = a
                while y != top:
                    expected.add(y)
                    y = tree.parent(y)
                expected.add(top)
                for x in net.nodes:
                    got = on_chain_segment(scheme.labels[x],
                                           scheme.labels[a],
                                           scheme.labels[top])
                    assert got == (x in expected), (e, f, x)

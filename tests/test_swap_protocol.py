"""Distributed reproduction of Section IV: the malleable tree layer.

Three properties under test:

1. *Self-stabilizing construction*: from arbitrary configurations the layer
   reaches a silent legal configuration (a spanning tree rooted at the
   minimum identity, fully labeled with distances and sizes).
2. *Loop-free, alarm-free switching* (Fig. 1): a legal ``swt = w'`` request
   drives the three-phase local switch; at every intermediate configuration
   the parent pointers form a spanning tree AND the Lemma 4.1 verifier
   accepts — the distributed counterpart of the sequential trace tests.
3. *Recovery*: corrupted requests (including a cycle-creating target inside
   the initiator's own subtree) and mid-switch faults are detected through
   the bounded counters and repaired by reconstruction.
"""

import pytest

from repro.core import bfs_tree, random_spanning_tree
from repro.core.swap import (
    MalleableTreeProtocol,
    malleable_labels_of_config,
    tree_of_config,
)
from repro.graphs import (
    grid_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    ring,
    theta_graph,
)
from repro.labeling.malleable import MalleablePLS
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    NONE,
    Simulator,
    SynchronousScheduler,
    corrupt_random_nodes,
    random_configuration,
)

NETS = [
    ring(8, seed=1),
    grid_graph(3, 3, seed=2),
    theta_graph([3, 4, 5], seed=3),
    lollipop_graph(4, 4, seed=4),
    random_connected_graph(12, seed=5),
]

IDS = [f"g{i}n{n.n}" for i, n in enumerate(NETS)]


def legal_sim(net, tree=None, scheduler=None, **kw):
    proto = MalleableTreeProtocol()
    t = tree if tree is not None else bfs_tree(net)
    cfg = proto.legal_configuration(net, t)
    return proto, Simulator(net, proto, scheduler, config=cfg, **kw)


class TestConstruction:
    @pytest.mark.parametrize("net", NETS, ids=IDS)
    def test_from_arbitrary_configurations(self, net):
        proto = MalleableTreeProtocol()
        for seed in range(5):
            cfg = random_configuration(net, proto, seed=seed)
            sim = Simulator(net, proto, config=cfg)
            result = sim.run(max_rounds=60 * net.n + 200)
            assert result.silent, seed
            assert proto.is_legal(net, sim.config), seed

    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_under_every_scheduler(self, name):
        net = random_connected_graph(10, seed=6)
        proto = MalleableTreeProtocol()
        cfg = random_configuration(net, proto, seed=7)
        sched = ALL_SCHEDULER_FACTORIES[name](seed=8)
        sim = Simulator(net, proto, sched, config=cfg)
        result = sim.run(max_rounds=20_000)
        assert result.silent, name
        assert proto.is_legal(net, sim.config), name

    def test_legal_configuration_is_silent(self):
        net = random_connected_graph(12, seed=9)
        for seed in range(3):
            t = random_spanning_tree(net, seed=seed, root=net.min_id)
            proto, sim = legal_sim(net, t)
            assert sim.is_silent()
            assert proto.is_legal(net, sim.config)

    def test_legal_non_min_rooted_tree_rebuilds(self):
        """A tree rooted elsewhere is not legal for the election layer: the
        min-id node re-roots the tree."""
        net = path_graph(6, seed=10)
        other = max(net.nodes)
        t = bfs_tree(net, root=other)
        proto, sim = legal_sim(net, t)
        result = sim.run(max_rounds=60 * net.n)
        assert result.silent
        assert proto.is_legal(net, sim.config)


class TestSwitching:
    def _watch(self, net, proto):
        """Invariant: parent map is always a spanning tree (loop-freeness)
        and the Lemma 4.1 verifier accepts every configuration."""
        pls = MalleablePLS()

        def invariant(n, cfg):
            try:
                tree_of_config(n, cfg)
            except ValueError:
                return False
            return pls.verify(n, malleable_labels_of_config(n, cfg)).accepted

        return invariant

    def _legal_local_switch(self, net, tree):
        """Some (v, w') with w' a non-parent neighbor outside v's subtree."""
        for v in net.nodes:
            if tree.parent(v) is None:
                continue
            sub = tree.subtree_nodes(v)
            for w2 in net.neighbors(v):
                if w2 != tree.parent(v) and w2 not in sub:
                    return v, w2
        return None

    @pytest.mark.parametrize("net", NETS, ids=IDS)
    def test_local_switch_loop_free_and_alarm_free(self, net):
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        pick = self._legal_local_switch(net, tree)
        if pick is None:
            pytest.skip("no legal local switch in this instance")
        v, w2 = pick
        cfg = proto.legal_configuration(net, tree)
        sim = Simulator(net, proto, SynchronousScheduler(), config=cfg,
                        invariant=self._watch(net, proto))
        sim.overwrite(v, {"swt": w2})
        result = sim.run(max_rounds=30 * net.n)
        assert result.silent
        assert result.invariant_violations == 0
        new_tree = tree_of_config(net, sim.config)
        assert new_tree.parent(v) == w2
        expected = tree.edges()
        expected.discard(tuple(sorted((v, tree.parent(v)))))
        expected.add(tuple(sorted((v, w2))))
        assert new_tree.edges() == expected
        # the final configuration carries the full redundant labeling
        sizes = new_tree.subtree_sizes()
        for u in net.nodes:
            assert sim.config[u]["d"] == new_tree.depth(u)
            assert sim.config[u]["s"] == sizes[u]

    def test_switch_rounds_linear(self):
        """One local switch completes in O(n) rounds (Section IV claim)."""
        rounds = []
        for n in (8, 16, 32):
            net = ring(n, seed=11, scramble_ids=False)
            proto = MalleableTreeProtocol()
            tree = bfs_tree(net)
            pick = self._legal_local_switch(net, tree)
            assert pick is not None
            v, w2 = pick
            cfg = proto.legal_configuration(net, tree)
            sim = Simulator(net, proto, SynchronousScheduler(), config=cfg)
            sim.overwrite(v, {"swt": w2})
            result = sim.run(max_rounds=50 * n)
            assert result.silent
            rounds.append(result.rounds)
        # linear-ish growth: doubling n at most ~doubles the rounds
        assert rounds[2] <= 3 * rounds[1] + 8
        assert rounds[1] <= 3 * rounds[0] + 8

    def test_chain_switch_realizes_t_plus_e_minus_f(self):
        """Drive the full Fig. 1(a) chain: each node re-parents onto its
        former chain child once that child has completed."""
        net = theta_graph([4, 5], seed=12)
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        e = tree.non_tree_edges()[0]
        f = tree.fundamental_cycle_edges(e)[-1]
        # compute the chain (as the task layer does via NCA labels)
        fx, fy = f
        x = fx if tree.parent(fx) == fy else fy
        detached = tree.subtree_nodes(x)
        a = e[0] if e[0] in detached else e[1]
        b = e[1] if a == e[0] else e[0]
        chain = []
        y = a
        while y != x:
            chain.append(y)
            y = tree.parent(y)
        chain.append(x)

        cfg = proto.legal_configuration(net, tree)
        sim = Simulator(net, proto, SynchronousScheduler(), config=cfg,
                        invariant=self._watch(net, proto))
        target = b
        for y in chain:
            sim.overwrite(y, {"swt": target})
            result = sim.run(max_rounds=40 * net.n,
                             stop_when=lambda n, c, y=y, t=target:
                             c[y]["par"] == t and c[y]["swt"] is NONE)
            assert result.stopped_by_predicate or result.silent
            target = y
        result = sim.run(max_rounds=40 * net.n)
        assert result.silent
        assert result.invariant_violations == 0
        new_tree = tree_of_config(net, sim.config)
        assert new_tree.edges() == (tree.edges() | {tuple(sorted(e))}) - {tuple(sorted(f))}


class TestRecovery:
    def test_cycle_creating_request_recovers(self):
        """A corrupted swt pointing inside the initiator's own subtree
        creates a parent cycle at switch time; the bounded counters detect
        it and the layer rebuilds a legal tree."""
        net = random_connected_graph(12, extra_edges=20, seed=13)
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        found = None
        for v in net.nodes:
            if tree.parent(v) is None:
                continue
            sub = tree.subtree_nodes(v)
            inside = [u for u in net.neighbors(v)
                      if u in sub and u != v and u != tree.parent(v)]
            if inside:
                found = (v, inside[0])
                break
        if found is None:
            pytest.skip("no subtree-internal neighbor in this instance")
        v, bad_target = found
        cfg = proto.legal_configuration(net, tree)
        sim = Simulator(net, proto, config=cfg)
        sim.overwrite(v, {"swt": bad_target})
        result = sim.run(max_rounds=100 * net.n + 400)
        assert result.silent
        assert proto.is_legal(net, sim.config)

    def test_mid_switch_fault_recovers(self):
        net = random_connected_graph(12, seed=14)
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        pick = None
        for v in net.nodes:
            if tree.parent(v) is None:
                continue
            sub = tree.subtree_nodes(v)
            cands = [u for u in net.neighbors(v)
                     if u != tree.parent(v) and u not in sub]
            if cands:
                pick = (v, cands[0])
                break
        assert pick is not None
        v, w2 = pick
        cfg = proto.legal_configuration(net, tree)
        sim = Simulator(net, proto, config=cfg)
        sim.overwrite(v, {"swt": w2})
        sim.run_round()
        sim.run_round()  # mid-flight
        corrupted, _ = corrupt_random_nodes(net, sim.spec, sim.config,
                                            k=3, seed=15)
        sim2 = Simulator(net, proto, config=corrupted)
        result = sim2.run(max_rounds=100 * net.n + 400)
        assert result.silent
        # after recovery the configuration is a legal labeled tree
        assert proto.is_legal(net, sim2.config)

    def test_spurious_marks_collapse(self):
        net = grid_graph(3, 3, seed=16)
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        cfg = proto.legal_configuration(net, tree)
        sim = Simulator(net, proto, config=cfg)
        for v in list(net.nodes)[:4]:
            sim.overwrite(v, {"mark": True})
        result = sim.run(max_rounds=30 * net.n)
        assert result.silent
        assert proto.is_legal(net, sim.config)

    def test_spurious_swt_cleared(self):
        """A swt pointing at the current parent (or a non-neighbor) is
        insane and must be cleared without touching the tree."""
        net = ring(8, seed=17)
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        cfg = proto.legal_configuration(net, tree)
        sim = Simulator(net, proto, config=cfg)
        v = [u for u in net.nodes if tree.parent(u) is not None][0]
        sim.overwrite(v, {"swt": tree.parent(v)})
        result = sim.run(max_rounds=20 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == tree.edges()

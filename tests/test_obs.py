"""``repro.obs`` — the convergence telemetry layer, end to end.

The claims under test, in the order the PR makes them:

* **determinism** — a trace is a pure function of the pinned run: two
  recordings are byte-identical, and the slot and columnar engine paths
  produce byte-identical rows and totals (their headers differ only in
  the self-describing ``engine`` capability field);
* **the pinned acceptance trajectory** — on acceptance-sst-512 the per
  round rows sum to exactly the 17,265 moves / 19 rounds every perf PR
  quotes, and the trace validates;
* **schema honesty** — ``validate_trace`` distinguishes a torn tail
  (truncated write) from mid-file corruption from a capture that never
  finalized;
* **zero-overhead seam** — without a recorder ``run_round`` is the
  plain class method (nothing shadows it on the instance); with one,
  the observed loop shadows it and the perf harness refuses to measure;
* **integration** — campaign specs with ``trace=1`` persist a
  validating trace named by fingerprint (and untraced specs serialize
  exactly as before the telemetry layer existed), the sharded engine
  streams per-shard rows, and the ``repro obs`` CLI drives all of it.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.registry import (
    SCHEDULERS,
    build_config,
    build_network,
    build_protocol,
)
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.graphs.implicit import implicit_grid
from repro.obs.probes import TraceRecorder, capture_active
from repro.obs.report import render_report, render_row, sparkline
from repro.obs.trace import TRACE_SCHEMA_VERSION, read_trace, validate_trace
from repro.runtime.sharding import ShardedSimulator
from repro.runtime.simulator import Simulator

SRC = Path(__file__).resolve().parents[1] / "src"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


def _acceptance_sim(n=48, recorder=None, **kwargs):
    """The acceptance workload's shape at any n (see perf.workloads)."""
    net = build_network("random", {"n": n, "seed": 42}, random.Random(0))
    proto, _ = build_protocol("sst")
    config, _ = build_config("arbitrary", net, proto, random.Random(1),
                             {"seed": 7})
    scheduler = SCHEDULERS["central-random"](3)
    return Simulator(net, proto, scheduler, config=config,
                     recorder=recorder, **kwargs)


def _run_to_silence(sim):
    while sim.run_round():
        pass
    return sim


def _record(path, n=48, **kwargs):
    recorder = TraceRecorder(path)
    sim = _run_to_silence(_acceptance_sim(n=n, recorder=recorder, **kwargs))
    recorder.finalize(silent=sim.is_silent())
    return sim


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

def test_repeat_recordings_are_byte_identical(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _record(a)
    _record(b)
    assert a.read_bytes() == b.read_bytes()
    assert validate_trace(a) == []


def test_slot_and_column_paths_emit_identical_rows(tmp_path):
    """The columnar plane is an optimization, not a semantics change —
    so the trace *rows* (and totals) must agree byte for byte, and only
    the header's self-describing ``engine`` field may differ."""
    a, b = tmp_path / "vector.jsonl", tmp_path / "scalar.jsonl"
    _record(a)
    _record(b, use_vector_rules=False)
    lines_a, lines_b = a.read_bytes().splitlines(), b.read_bytes().splitlines()
    assert lines_a[1:] == lines_b[1:]  # every row + the end record
    header_a, header_b = json.loads(lines_a[0]), json.loads(lines_b[0])
    assert header_b["engine"]["vector"] is False
    header_a.pop("engine"), header_b.pop("engine")
    assert header_a == header_b


def test_observed_run_is_bit_identical_to_unobserved(tmp_path):
    """Attaching a recorder must not change a single move: the observed
    loop replays the fused path's exact scheduler draws."""
    plain = _run_to_silence(_acceptance_sim())
    traced = _record(tmp_path / "t.jsonl")
    assert (traced.moves, traced.rounds) == (plain.moves, plain.rounds)
    assert traced._state == plain._state


# ----------------------------------------------------------------------
# the pinned acceptance trajectory
# ----------------------------------------------------------------------

def test_acceptance_trace_round_trips_with_pinned_totals(tmp_path):
    path = tmp_path / "acceptance.jsonl"
    _record(path, n=512)
    assert validate_trace(path) == []
    header, rows, end = read_trace(path)
    assert header["schema"] == TRACE_SCHEMA_VERSION
    assert header["n"] == 512
    assert "potential" in header["probes"]
    # the number every optimization PR is judged on, now per round
    assert end["moves"] == 17265
    assert end["rounds"] == 19
    assert end["silent"] is True
    assert sum(r["moves"] for r in rows) == 17265
    assert len(rows) == 19
    assert rows[-1]["enabled_end"] == 0
    # the potential column is present every round and descends overall
    # (not per round: the packed-claim sum may tick up while a false
    # root's claim propagates before being rejected)
    potentials = [header["potential_initial"]] + [r["potential"]
                                                  for r in rows]
    assert all(isinstance(p, int) for p in potentials)
    assert potentials[-1] < potentials[0]


# ----------------------------------------------------------------------
# schema honesty: validate_trace
# ----------------------------------------------------------------------

def test_validate_rejects_unterminated_tail(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path)
    path.write_bytes(path.read_bytes().rstrip(b"\n"))
    problems = validate_trace(path)
    assert any("torn tail" in p and "not newline-terminated" in p
               for p in problems)


def test_validate_rejects_truncated_final_line(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path)
    path.write_bytes(path.read_bytes()[:-12])  # cut into the end record
    problems = validate_trace(path)
    assert any("torn tail" in p for p in problems)


def test_validate_rejects_midfile_corruption(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path)
    lines = path.read_bytes().splitlines(keepends=True)
    lines[1] = b'{"kind": "round", "ro\n'
    path.write_bytes(b"".join(lines))
    problems = validate_trace(path)
    assert any("corrupt record mid-file" in p for p in problems)


def test_validate_rejects_missing_end(tmp_path):
    path = tmp_path / "t.jsonl"
    recorder = TraceRecorder(path)
    sim = _acceptance_sim(recorder=recorder)
    sim.run_round()
    recorder.abort()  # the honest crash shape: no end record
    problems = validate_trace(path)
    assert any("never finalized" in p for p in problems)


def test_validate_cross_checks_end_totals(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path)
    lines = path.read_text().splitlines(keepends=True)
    end = json.loads(lines[-1])
    end["moves"] += 1
    lines[-1] = json.dumps(end, sort_keys=True,
                           separators=(",", ":")) + "\n"
    path.write_text("".join(lines))
    assert any("moves" in p for p in validate_trace(path))


# ----------------------------------------------------------------------
# the zero-overhead seam
# ----------------------------------------------------------------------

def test_disabled_path_leaves_run_round_unshadowed(tmp_path):
    sim = _acceptance_sim()
    assert "run_round" not in vars(sim)
    assert type(sim).run_round is Simulator.run_round
    recorder = TraceRecorder(tmp_path / "t.jsonl")
    observed = _acceptance_sim(recorder=recorder)
    assert "run_round" in vars(observed)
    recorder.abort()


def test_capture_active_tracks_recorder_lifecycle(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_OBS_CAPTURE", raising=False)
    assert not capture_active()
    recorder = TraceRecorder(tmp_path / "t.jsonl")
    sim = _acceptance_sim(recorder=recorder)
    assert capture_active()
    recorder.finalize(silent=sim.is_silent())
    assert not capture_active()
    monkeypatch.setenv("REPRO_OBS_CAPTURE", "1")
    assert capture_active()


def test_recorder_serves_exactly_one_execution(tmp_path):
    recorder = TraceRecorder(tmp_path / "t.jsonl")
    _acceptance_sim(recorder=recorder)
    with pytest.raises(RuntimeError, match="already attached"):
        _acceptance_sim(recorder=recorder)
    recorder.abort()


# ----------------------------------------------------------------------
# campaign integration
# ----------------------------------------------------------------------

_TRACED_SPEC = dict(
    experiment="exp1-convergence", protocol="sst", topology="random",
    topo_params={"n": 8, "seed": 3}, scheduler="central-random",
    init="arbitrary", init_params={"seed": 1})


def test_untraced_specs_serialize_exactly_as_before():
    # trace=0 must round-trip invisibly: every pre-telemetry
    # fingerprint (hence every existing result store) is preserved
    spec = ExperimentSpec(**_TRACED_SPEC)
    assert "trace" not in spec.to_dict()
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


def test_traced_spec_persists_validating_trace(tmp_path):
    spec = ExperimentSpec(**_TRACED_SPEC, trace=1)
    record = run_spec(spec, root_seed=0, trace_dir=tmp_path)
    name = record["metrics"]["trace"]
    assert name == f"trace-{spec.fingerprint(0)}.jsonl"
    trace_path = tmp_path / name
    assert validate_trace(trace_path) == []
    header, rows, end = read_trace(trace_path)
    assert header["fingerprint"] == spec.fingerprint(0)
    assert header["experiment"] == spec.experiment
    # sst has a local certifier, so the flicker column rides along
    assert "certified" in header["probes"]
    assert all("certified" in r for r in rows)
    assert rows[-1]["certified"] == 1  # silent => locally certified
    assert end["moves"] == record["metrics"]["moves"]


def test_traced_spec_without_trace_dir_writes_nothing(tmp_path):
    # the record still names the trace (it is derived, pure data), but
    # no bytes land anywhere without a directory to persist into
    spec = ExperimentSpec(**_TRACED_SPEC, trace=1)
    record = run_spec(spec, root_seed=0)
    assert record["metrics"]["trace"].startswith("trace-")
    assert list(tmp_path.iterdir()) == []


def test_trace_flag_does_not_change_run_results(tmp_path):
    plain = run_spec(ExperimentSpec(**_TRACED_SPEC), root_seed=0)
    traced = run_spec(ExperimentSpec(**_TRACED_SPEC, trace=1),
                      root_seed=0, trace_dir=tmp_path)
    for key in ("moves", "rounds", "silent"):
        assert plain["metrics"][key] == traced["metrics"][key]


# ----------------------------------------------------------------------
# sharded integration
# ----------------------------------------------------------------------

def _sst_factory():
    return build_protocol("sst")[0]


def test_sharded_trace_streams_per_shard_rows(tmp_path):
    path = tmp_path / "sharded.jsonl"
    topo = implicit_grid(4, 8)
    sharded = ShardedSimulator(topo, _sst_factory, 2, init_seed=7)
    try:
        result = sharded.run(max_rounds=10_000,
                             recorder=TraceRecorder(path))
    finally:
        sharded.close()
    assert result.silent
    assert validate_trace(path) == []
    header, rows, end = read_trace(path)
    assert header["scheduler"] == "synchronous-sharded"
    assert header["engine"]["shards"] == 2
    assert "per_shard" in header["probes"]
    assert (end["rounds"], end["moves"]) == (result.rounds, result.moves)
    for row in rows:
        assert sum(row["per_shard"]) == row["moves"]
    # the synchronous daemon moves every enabled node: the next round's
    # total is exactly this round's enabled_end, and silence ends at 0
    for prev, nxt in zip(rows, rows[1:]):
        assert prev["enabled_end"] == nxt["moves"]
    assert rows[-1]["enabled_end"] == 0


def test_sharded_budget_stop_leaves_enabled_end_open(tmp_path):
    path = tmp_path / "budget.jsonl"
    topo = implicit_grid(4, 8)
    sharded = ShardedSimulator(topo, _sst_factory, 2, init_seed=7)
    try:
        sharded.run(max_rounds=2, require_silence=False,
                    recorder=TraceRecorder(path))
    finally:
        sharded.close()
    assert validate_trace(path) == []
    _, rows, end = read_trace(path)
    assert end["silent"] is False
    assert len(rows) == 2
    # the budget stopped the run before round 3 revealed how many of
    # round 2's writes left nodes enabled: the column is honestly open
    assert rows[-1]["enabled_end"] is None


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    decay = sparkline([8.0, 4.0, 2.0, 1.0])
    assert len(decay) == 4 and decay[0] == "█" and decay[-1] == "▁"
    assert len(sparkline([float(i) for i in range(500)], width=60)) == 60


def test_report_renders_summary_and_table(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path)
    out = render_report(*read_trace(path))
    assert "enabled-set decay" in out
    assert "moves per round" in out
    assert "potential descent" in out
    assert "round" in out and "enabled_start" in out


def test_report_elides_long_traces(tmp_path):
    path = tmp_path / "t.jsonl"
    _record(path, n=512)
    out = render_report(*read_trace(path), max_rows=10)
    assert "rounds elided" in out


def test_render_row_is_one_line():
    line = render_row({"round": 3, "moves": 17, "enabled_start": 20,
                       "enabled_end": 5, "potential": 99})
    assert "\n" not in line
    assert "round" in line and "potential 99" in line


# ----------------------------------------------------------------------
# the CLI, end to end
# ----------------------------------------------------------------------

def test_cli_record_report_validate(tmp_path):
    out = tmp_path / "smoke.jsonl"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "record",
         "--workload", "smoke-sst-48", "--out", str(out)],
        capture_output=True, text=True, env=_env())
    assert proc.returncode == 0, proc.stderr
    assert "silent=True" in proc.stdout
    assert validate_trace(out) == []
    header, _, _ = read_trace(out)
    assert header["workload"] == "smoke-sst-48"

    report = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "report", str(out)],
        capture_output=True, text=True, env=_env())
    assert report.returncode == 0, report.stderr
    assert "enabled-set decay" in report.stdout

    ok = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "validate", str(out)],
        capture_output=True, text=True, env=_env())
    assert ok.returncode == 0 and ": ok" in ok.stdout

    out.write_bytes(out.read_bytes().rstrip(b"\n"))
    bad = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "validate", str(out)],
        capture_output=True, text=True, env=_env())
    assert bad.returncode == 1 and "torn tail" in bad.stdout


def test_cli_tail_follows_to_the_end_record(tmp_path):
    out = tmp_path / "t.jsonl"
    _record(out)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "tail", str(out),
         "--timeout", "10"],
        capture_output=True, text=True, env=_env())
    assert proc.returncode == 0, proc.stderr
    assert "end: " in proc.stdout
    assert proc.stdout.count("round") >= 2

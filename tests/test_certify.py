"""The local certification subsystem (repro.certify).

Four pillars:

* **Completeness** — the certificate assigner's decoration of each task's
  legitimate configuration is accepted by every node's local verifier,
  is legal, and is genuinely silent for the runtime protocol.
* **Adversarial soundness** — every sampled single-register corruption of
  a certified legitimate configuration is rejected by at least one
  node's neighborhood-only verifier, or lands on another configuration
  that is itself certified *and* legal (the SST alternate-parent case).
* **The certificate-backed oracle** — guided protocols run with
  ``read_locality = "neighborhood"``; the subtree digests settle to the
  assigner's fixpoint; the memo makes the consulting rule deterministic
  per digest.
* **The model checker** — closure at the legitimate configuration and
  convergence from corruptions under *all* daemon choices at small n,
  plus detection of deliberately broken dynamics.
"""

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.certify.modelcheck import check_certifier, explore
from repro.certify.oracle import CertifiedOracle, DigestLayer, config_digest
from repro.certify.schemes import (
    CERTIFIERS,
    get_certifier,
    single_register_corruptions,
)
from repro.certify.space import measure_task, space_rows
from repro.core.tasks import ORACLE_DIGEST_FIELDS, guided_mst_protocol
from repro.graphs import random_connected_graph, ring
from repro.runtime import Simulator, random_configuration
from repro.runtime.protocol import Protocol
from repro.runtime.registers import NONE, RegisterSpec, flag_field

TASKS = sorted(CERTIFIERS)

SRC = Path(__file__).resolve().parent.parent / "src"


def _env():
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ----------------------------------------------------------------------
# completeness
# ----------------------------------------------------------------------


class TestLegitimateAccepted:
    @pytest.mark.parametrize("task", TASKS)
    @pytest.mark.parametrize("n", [6, 11])
    def test_accepted_legal_and_silent(self, task, n):
        cert = CERTIFIERS[task]
        net = cert.build_network(n, seed=2)
        cfg = cert.legitimate(net)
        out = cert.verify(net, cfg)
        assert out.accepted, f"rejecting nodes: {out.rejecting}"
        assert cert.is_legal(net, cfg)
        # the certified configuration is the runtime protocol's fixpoint
        sim = Simulator(net, cert.protocol(), config=cfg)
        assert sim.is_silent()

    @pytest.mark.parametrize("task", TASKS)
    def test_verifier_reads_one_hop_only(self, task):
        """verify_node receives exactly the 1-hop neighborhood — locality
        is structural, not a convention."""
        cert = CERTIFIERS[task]
        net = cert.build_network(9, seed=3)
        cfg = cert.legitimate(net)
        for v in net.nodes:
            nbrs = [(u, cfg[u]) for u in net.neighbors(v)]
            assert cert.verify_node(net, v, cfg[v], nbrs)

    def test_stabilized_run_is_certified(self):
        """A real execution's final configuration certifies, not just the
        assigner's canonical one."""
        cert = get_certifier("guided-bfs")
        net = random_connected_graph(10, seed=7)
        proto = cert.protocol()
        sim = Simulator(net, proto,
                        config=random_configuration(net, proto, seed=8))
        assert sim.run(max_rounds=8000 * net.n).silent
        decorated = cert.certify(net, sim.config)
        assert cert.verify(net, decorated).accepted


# ----------------------------------------------------------------------
# adversarial soundness
# ----------------------------------------------------------------------


class TestCorruptionRejected:
    @pytest.mark.parametrize("task", TASKS)
    def test_every_single_register_corruption_rejected_or_legal(self, task):
        cert = CERTIFIERS[task]
        net = cert.build_network(8, seed=3)
        base = cert.legitimate(net)
        rng = random.Random(99)
        total = 0
        for v, field, value in single_register_corruptions(
                net, cert, base, rng, draws=3):
            total += 1
            cfg = {u: dict(s) for u, s in base.items()}
            cfg[v][field] = value
            out = cert.verify(net, cfg)
            if out.accepted:
                # acceptance is only permitted when the corruption lands
                # on another genuinely legitimate configuration
                assert cert.is_legal(net, cfg), (
                    f"certificate fake: node {v} field {field!r} "
                    f"-> {value!r} accepted but illegal")
        assert total > 50  # the sweep actually exercised the register

    def test_rejection_is_local(self):
        """A corruption is rejected by a node in the corrupted register's
        own closed neighborhood (the verifier cannot point elsewhere)."""
        cert = get_certifier("sst")
        net = ring(8, seed=1)
        base = cert.legitimate(net)
        cfg = {u: dict(s) for u, s in base.items()}
        victim = max(net.nodes)
        cfg[victim]["d"] = (cfg[victim]["d"] + 3) % net.n_bound
        out = cert.verify(net, cfg)
        assert not out.accepted
        closed = set(net.neighbors(victim)) | {victim}
        assert set(out.rejecting) & closed


# ----------------------------------------------------------------------
# the certificate-backed oracle
# ----------------------------------------------------------------------


class TestCertifiedOracle:
    def test_guided_protocols_declare_neighborhood_reads(self):
        for task in ("guided-bfs", "guided-mst", "guided-mdst"):
            assert CERTIFIERS[task].protocol().read_locality == "neighborhood"

    def test_digest_layer_settles_to_assigner_fixpoint(self):
        cert = get_certifier("guided-mst")
        net = cert.build_network(9, seed=5)
        proto = cert.protocol()
        cfg = cert.legitimate(net)
        # corrupt every ver register; the digest layer must rebuild the
        # exact Merkle fixpoint the assigner computed
        expected = {v: cfg[v]["ver"] for v in net.nodes}
        for v in net.nodes:
            cfg[v]["ver"] = (cfg[v]["ver"] + 1 + v) % (2 ** 64)
        sim = Simulator(net, proto, config=cfg)
        assert sim.run(max_rounds=100 * net.n).silent
        assert {v: sim.config[v]["ver"] for v in net.nodes} == expected

    def test_config_digest_matches_runtime_layer(self):
        cert = get_certifier("guided-mst")
        net = cert.build_network(8, seed=6)
        cfg = cert.legitimate(net)
        layer = DigestLayer(fields=ORACLE_DIGEST_FIELDS)
        from repro.runtime.protocol import NodeView
        want = config_digest(net, cfg, ORACLE_DIGEST_FIELDS)
        for v in net.nodes:
            assert layer.expected(NodeView(net, v, cfg)) == want[v]

    def test_memo_is_write_once_per_key(self):
        oracle = CertifiedOracle()
        calls = []
        assert oracle.consult(7, lambda: calls.append(1) or "a") == "a"
        assert oracle.consult(7, lambda: calls.append(1) or "b") == "a"
        assert oracle.consult(8, lambda: calls.append(1) or "b") == "b"
        assert len(calls) == 2
        assert oracle.consults == 3 and oracle.misses == 2

    def test_mst_oracle_consults_once_per_digest(self):
        net = random_connected_graph(10, seed=8, weighted=True)
        proto = guided_mst_protocol()
        cfg = random_configuration(net, proto, seed=9)
        sim = Simulator(net, proto, config=cfg)
        assert sim.run(max_rounds=8000 * net.n).silent
        task = proto.layers[-1]
        assert task._oracle.misses <= task._oracle.consults
        assert task._oracle.misses >= 1


# ----------------------------------------------------------------------
# fast paths (adhoc-bfs / malleable-tree)
# ----------------------------------------------------------------------


class TestEngineFastPaths:
    def test_fast_step_and_exact_deltas_declared(self):
        from repro.baselines.dim_bfs import AdHocBFSProtocol
        from repro.core.swap import MalleableTreeProtocol
        for proto in (AdHocBFSProtocol(), MalleableTreeProtocol()):
            assert callable(proto.fast_step)
            assert proto.exact_deltas is True

    @pytest.mark.parametrize("factory", ["adhoc-bfs", "malleable-tree"])
    def test_fast_step_equals_step(self, factory):
        from repro.baselines.dim_bfs import AdHocBFSProtocol
        from repro.core.swap import MalleableTreeProtocol
        from repro.runtime.protocol import NodeView
        proto = (AdHocBFSProtocol() if factory == "adhoc-bfs"
                 else MalleableTreeProtocol())
        net = random_connected_graph(12, seed=13)
        for seed in range(4):
            cfg = random_configuration(net, proto, seed=seed)
            rows = {v: tuple((u, cfg[u]) for u in net.neighbors(v))
                    for v in net.nodes}
            for v in net.nodes:
                view = NodeView(net, v, cfg)
                assert proto.fast_step(net, cfg, v, rows[v]) == \
                    proto.step(view)


# ----------------------------------------------------------------------
# space accounting
# ----------------------------------------------------------------------


class TestSpaceAccounting:
    def test_rows_cover_all_tasks_and_bounds_hold(self):
        rows = space_rows(sizes=(16, 64), seed=1)
        tasks = {r.task for r in rows}
        assert tasks == set(CERTIFIERS)
        for r in rows:
            assert r.max_bits > 0
            # generous constant: the normalized column is max_bits over
            # log2(N) (log2(N)^2 for MST); the paper's claim is that it
            # stays bounded, and these instances sit far below 64
            assert r.normalized < 64, r

    def test_mst_certificate_dominates_log_tasks(self):
        mst = measure_task(CERTIFIERS["guided-mst"], 64, seed=1)
        bfs = measure_task(CERTIFIERS["guided-bfs"], 64, seed=1)
        assert mst.max_bits > bfs.max_bits
        assert "2" in mst.bound and "2" not in bfs.bound

    def test_normalized_ratio_does_not_grow(self):
        """The measured bits track the claimed growth: the normalized
        column must not increase from n=16 to n=256."""
        for task in CERTIFIERS:
            small = measure_task(CERTIFIERS[task], 16, seed=1)
            big = measure_task(CERTIFIERS[task], 256, seed=1)
            assert big.normalized <= small.normalized * 1.05, task


# ----------------------------------------------------------------------
# the model checker
# ----------------------------------------------------------------------


class _Flipper(Protocol):
    """Deliberate livelock: two nodes forever copying each other's bit."""

    name = "flipper"

    def register_spec(self, net):
        return RegisterSpec([flag_field("b")])

    def step(self, view):
        for _, st in view.nbr_states():
            if st["b"] == view["b"]:
                return {"b": not view["b"]}
        return None


class TestModelChecker:
    def test_closure_at_legit_config(self):
        cert = get_certifier("sst")
        net = cert.build_network(4, seed=1)
        res = explore(net, cert.protocol(), [cert.legitimate(net)])
        assert res.states == 1 and res.silent_states == 1 and res.ok

    def test_detects_livelock(self):
        net = ring(4, seed=1)
        proto = _Flipper()
        start = {v: {"b": False} for v in net.nodes}
        res = explore(net, proto, [start], max_states=5000)
        assert res.cycle is not None
        assert not res.ok

    def test_detects_illegal_silence(self):
        cert = get_certifier("sst")
        net = cert.build_network(4, seed=1)
        proto = cert.protocol()
        legit = cert.legitimate(net)

        def never_legal(config):
            return False

        res = explore(net, proto, [legit], is_legal=never_legal)
        assert res.illegal_silent and not res.ok

    @pytest.mark.parametrize("task", ["sst", "nca-build"])
    def test_closure_and_convergence_under_all_daemons(self, task):
        res = check_certifier(CERTIFIERS[task], n=4, corruption_draws=1,
                              max_states=120_000)
        assert res.ok, res.summary()
        assert res.silent_states >= 1

    def test_guided_bfs_bounded_exploration_is_clean(self):
        res = check_certifier(CERTIFIERS["guided-bfs"], n=4,
                              corruption_draws=1, max_corruptions=12,
                              max_states=20_000)
        # heavy re-election starts may truncate the budget; what matters
        # is that no violation exists in the explored region
        assert res.ok_except_truncation, res.summary()


# ----------------------------------------------------------------------
# campaign + workload integration
# ----------------------------------------------------------------------


class TestIntegration:
    def test_certification_campaign_records_locally_certified(self):
        from repro.experiments.campaigns import get_campaign
        from repro.experiments.runner import run_spec
        campaign = get_campaign("certification")
        assert len(campaign) >= 12
        spec = next(s for s in campaign.specs if s.protocol == "sst")
        record = run_spec(spec, root_seed=0)
        assert record["metrics"]["locally_certified"] is True

    def test_guided_workloads_registered(self):
        from repro.perf.workloads import WORKLOADS, select_workloads
        for name in ("guided-bfs-128", "guided-bfs-512", "guided-mst-128",
                     "guided-mst-512", "guided-mdst-128", "guided-mdst-512"):
            assert name in WORKLOADS
            assert "full" in WORKLOADS[name].tags
        smoke = {w.name for w in select_workloads(smoke=True)}
        assert {"smoke-guided-bfs-48", "smoke-guided-mst-48",
                "smoke-guided-mdst-48"} <= smoke

    def test_guided_smoke_workload_measures(self):
        from repro.perf.harness import run_workload
        from repro.perf.workloads import WORKLOADS
        record = run_workload(WORKLOADS["smoke-guided-bfs-48"], repeats=1,
                              warmup=False)
        assert record["moves"] > 0 and record["moves_per_sec"] > 0

    def test_cli_certify_check_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "certify", "check", "--smoke",
             "--task", "sst", "--task", "guided-bfs"],
            capture_output=True, text=True, env=_env(), timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "certify check ok" in proc.stdout

    def test_cli_certify_space_markdown(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "certify", "space",
             "--sizes", "16", "--format", "markdown", "--task", "sst"],
            capture_output=True, text=True, env=_env(), timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "O(log n)" in proc.stdout

    def test_cli_certify_modelcheck(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "certify", "modelcheck",
             "--task", "sst", "--n", "4"],
            capture_output=True, text=True, env=_env(), timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


class TestModelCheckerFoundRegressions:
    """States the exhaustive checker reached that used to wedge or cycle;
    each must now drain to a silent legal configuration under any daemon."""

    def _mst_stale_payload_state(self):
        """The PR-4 guided-mst livelock witness: a stale SWAP broadcast
        commands endpoint 10 to re-parent onto its own child 14."""
        from repro.certify.oracle import config_digest
        from repro.core.tasks import ORACLE_DIGEST_FIELDS
        cert = get_certifier("guided-mst")
        net = cert.build_network(4, seed=1)
        proto = cert.protocol()
        bc = (10, 14, 10, ((5, 1),), ((5, 1),))
        rows = {
            5: dict(rid=5, par=NONE, d=0, s=NONE, mark=True, swt=NONE,
                    hv=10, lam=((5, 0),), ph="SWAP", ack=False,
                    cand=NONE, bc=bc),
            10: dict(rid=5, par=5, d=1, s=3, mark=False, swt=14,
                     hv=13, lam=((5, 1),), ph="SWAP", ack=False,
                     cand=NONE, bc=bc),
            13: dict(rid=5, par=10, d=NONE, s=1, mark=False, swt=NONE,
                     hv=NONE, lam=((5, 2),), ph="SWAP", ack=False,
                     cand=NONE, bc=bc),
            14: dict(rid=5, par=10, d=2, s=1, mark=False, swt=NONE,
                     hv=NONE, lam=((5, 1), (14, 0)), ph="SWAP", ack=True,
                     cand=NONE, bc=bc),
        }
        for v, ver in config_digest(net, rows, ORACLE_DIGEST_FIELDS).items():
            rows[v]["ver"] = ver
        return net, proto, rows

    def test_endpoint_refuses_own_descendant_target(self):
        from repro.runtime.protocol import NodeView
        net, proto, cfg = self._mst_stale_payload_state()
        task = proto.layers[-1]
        view = NodeView(net, 10, cfg)
        assert not task._endpoint_feasible(view, cfg[10]["bc"])
        # the impossible command is acked as complete, not waited on
        assert task.chain_phase_done(view, cfg[10]["bc"])

    def test_stale_payload_state_drains_to_legal_silence(self):
        from repro.baselines import kruskal_mst
        from repro.core.swap import tree_of_config
        net, proto, cfg = self._mst_stale_payload_state()
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=5000 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_stale_payload_state_has_no_daemon_cycle(self):
        net, proto, cfg = self._mst_stale_payload_state()
        res = explore(net, proto, [cfg], max_states=150_000)
        assert res.cycle is None, "livelock regression"
        assert not res.illegal_silent

    def _mst_stale_digest_state(self):
        """The second PR-4 guided-mst livelock witness: node 14 defected
        to a starved island, node 10's digest register is stale, and the
        root kept replaying a memoized SWAP payload from the stale key."""
        from repro.certify.oracle import config_digest
        from repro.core.tasks import ORACLE_DIGEST_FIELDS
        cert = get_certifier("guided-mst")
        net = cert.build_network(4, seed=1)
        proto = cert.protocol()
        bc = (14, 5, 10, ((5, 1), (14, 0)), ((5, 1),))
        rows = {
            5: dict(rid=5, par=NONE, d=0, s=3, mark=False, swt=NONE,
                    hv=10, lam=((5, 0),), ph="SWAP", ack=False,
                    cand=NONE, bc=bc),
            10: dict(rid=5, par=5, d=1, s=2, mark=False, swt=NONE,
                     hv=13, lam=((5, 1),), ph="WORK", ack=True,
                     cand=NONE, bc=NONE),
            13: dict(rid=5, par=10, d=2, s=1, mark=False, swt=NONE,
                     hv=NONE, lam=((5, 2),), ph="WORK", ack=True,
                     cand=NONE, bc=NONE),
            14: dict(rid=14, par=NONE, d=0, s=1, mark=False, swt=NONE,
                     hv=NONE, lam=((5, 1), (14, 0)), ph="WORK", ack=False,
                     cand=NONE, bc=NONE),
        }
        # deliberately stale digests: computed as if 14 were still 10's
        # child (the starved-repair situation the checker reached)
        stale = {u: dict(s) for u, s in rows.items()}
        stale[14]["par"] = 10
        for v, ver in config_digest(net, stale,
                                    ORACLE_DIGEST_FIELDS).items():
            rows[v]["ver"] = ver
        return net, proto, rows

    def test_stale_digest_state_drains_to_legal_silence(self):
        from repro.baselines import kruskal_mst
        from repro.core.swap import tree_of_config
        net, proto, cfg = self._mst_stale_digest_state()
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=5000 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_stale_digest_state_has_no_daemon_cycle(self):
        net, proto, cfg = self._mst_stale_digest_state()
        res = explore(net, proto, [cfg], max_states=200_000)
        assert res.cycle is None, "starved-digest replay livelock regression"
        assert not res.illegal_silent

    def _mst_junk_label_payload_state(self):
        """The third PR-4 guided-mst livelock witness: a payload whose
        frozen lam_a is junk defeats the label-based subtree check while
        the commanded target is again the endpoint's current child."""
        from repro.certify.oracle import config_digest
        from repro.core.tasks import ORACLE_DIGEST_FIELDS
        cert = get_certifier("guided-mst")
        net = cert.build_network(4, seed=1)
        proto = cert.protocol()
        junk = ((5, 0), (10, 0), (5, 1))
        bc = (10, 14, 10, junk, junk)
        rows = {
            5: dict(rid=5, par=NONE, d=0, s=NONE, mark=True, swt=NONE,
                    hv=10, lam=((5, 0),), ph="SWAP", ack=False,
                    cand=NONE, bc=bc),
            10: dict(rid=5, par=5, d=1, s=3, mark=False, swt=14,
                     hv=NONE, lam=((5, 1),), ph="SWAP", ack=False,
                     cand=NONE, bc=bc),
            13: dict(rid=5, par=10, d=2, s=1, mark=False, swt=NONE,
                     hv=NONE, lam=((5, 1), (13, 0)), ph="SWAP", ack=True,
                     cand=NONE, bc=bc),
            14: dict(rid=5, par=10, d=2, s=1, mark=False, swt=NONE,
                     hv=NONE, lam=((5, 1), (14, 0)), ph="SWAP", ack=True,
                     cand=NONE, bc=bc),
        }
        for v, ver in config_digest(net, rows, ORACLE_DIGEST_FIELDS).items():
            rows[v]["ver"] = ver
        return net, proto, rows

    def test_junk_label_payload_refused(self):
        from repro.runtime.protocol import NodeView
        net, proto, cfg = self._mst_junk_label_payload_state()
        task = proto.layers[-1]
        view = NodeView(net, 10, cfg)
        # both the lam_a-identity check and the own-child check refuse
        assert not task._endpoint_feasible(view, cfg[10]["bc"])
        assert task.chain_phase_done(view, cfg[10]["bc"])

    def test_junk_label_payload_state_drains(self):
        from repro.baselines import kruskal_mst
        from repro.core.swap import tree_of_config
        net, proto, cfg = self._mst_junk_label_payload_state()
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=5000 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_dead_chain_broadcast_drains(self):
        """Fourth witness (found in review): the endpoint of a crafted
        broadcast refuses, and inner on-chain nodes must cascade the
        abort upward instead of waiting forever for their former chain
        child — otherwise the phase wedges into silent illegality."""
        from repro.baselines import kruskal_mst
        from repro.certify.oracle import config_digest
        from repro.core import bfs_tree
        from repro.core.swap import MalleableTreeProtocol, tree_of_config
        from repro.core.tasks import ORACLE_DIGEST_FIELDS
        from repro.core.tasks import guided_mst_protocol as factory
        from repro.labeling.nca import NCALabeling

        net = random_connected_graph(8, seed=3, weighted=True)
        proto = factory()
        tree = bfs_tree(net, root=net.min_id)
        base = MalleableTreeProtocol().legal_configuration(net, tree)
        cfg = proto.initial_configuration(net)
        for v in net.nodes:
            cfg[v].update(base[v])
        scheme = NCALabeling(net, tree)
        for v in net.nodes:
            hv = scheme.heavy[v]
            cfg[v]["hv"] = NONE if hv is None else hv
            cfg[v]["lam"] = tuple(scheme.labels[v].segments)
        root, z = tree.root, max(net.nodes, key=tree.depth)
        bc = (z, 999, root, cfg[z]["lam"] + ((9, 0),), cfg[root]["lam"])
        for v in net.nodes:
            cfg[v].update(ph="SWAP", ack=False, cand=NONE, bc=bc)
        for v, ver in config_digest(net, cfg,
                                    ORACLE_DIGEST_FIELDS).items():
            cfg[v]["ver"] = ver

        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=8000 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).edges() == kruskal_mst(net)

    def test_junk_label_payload_state_has_no_daemon_cycle(self):
        """Markov (fresh-instance) semantics: the state machine itself has
        no daemon cycle from the witness.  The shared-instance mode can
        still report one here — cross-branch memo pollution realizes an
        oracle history no single execution can (see modelcheck docstring);
        the drain test above covers the real memoized semantics."""
        from repro.core.tasks import guided_mst_protocol
        net, proto, cfg = self._mst_junk_label_payload_state()
        res = explore(net, proto, [cfg], max_states=200_000,
                      protocol_factory=guided_mst_protocol)
        assert res.cycle is None, "junk-label payload livelock regression"
        assert not res.illegal_silent


class TestBenchReportMentionsRss:
    def test_comparison_table_has_rss_column(self, capsys):
        from repro.perf.cli import _print_comparison
        # peak_rss_kb rides on the comparison rows themselves (and thus
        # into BENCH_comparison.json) since the statics PR
        diff = {"tolerance": 2.5, "rows": [
            {"workload": "w", "status": "ok", "current_mps": 10.0,
             "baseline_mps": 10.0, "slowdown": 1.0,
             "peak_rss_kb": 12345}], "compared": 1,
            "regressions": [], "ok": True}
        _print_comparison(diff)
        out = capsys.readouterr().out
        assert "peak rss KiB" in out and "12,345" in out

"""Tests for the Algorithm 1 engine and the Section III BFS example."""

import pytest

from repro.core import bfs_tree, dfs_tree, random_spanning_tree
from repro.core.bfs import BFSPotential, is_bfs_tree
from repro.core.local_search import pls_guided_construction
from repro.graphs import (
    complete_graph,
    grid_graph,
    lollipop_graph,
    random_connected_graph,
    ring,
    theta_graph,
)

GRAPHS = [
    ring(9, seed=1),
    grid_graph(4, 4, seed=2),
    theta_graph([3, 4, 6], seed=3),
    lollipop_graph(5, 5, seed=4),
    complete_graph(8, seed=5),
    random_connected_graph(18, seed=6),
]

IDS = [f"g{i}n{n.n}" for i, n in enumerate(GRAPHS)]


class TestBFSPotential:
    @pytest.mark.parametrize("net", GRAPHS, ids=IDS)
    def test_zero_iff_bfs(self, net):
        pot = BFSPotential()
        t = bfs_tree(net)
        assert pot.value(net, t) == 0
        assert is_bfs_tree(net, t)
        d = dfs_tree(net)
        assert (pot.value(net, d) == 0) == is_bfs_tree(net, d)

    @pytest.mark.parametrize("net", GRAPHS, ids=IDS)
    def test_algorithm1_constructs_bfs_tree(self, net):
        pot = BFSPotential()
        for seed in range(3):
            start = random_spanning_tree(net, seed=seed, root=net.min_id)
            run = pls_guided_construction(net, pot, initial_tree=start)
            assert is_bfs_tree(net, run.tree)
            assert run.tree.root == start.root

    def test_phi_strictly_decreasing(self):
        """The BFS potential IS cyclical-decreasing under recomputation
        (unlike the MST trace potential, see repro.core.mst)."""
        net = lollipop_graph(5, 6, seed=7)
        pot = BFSPotential()
        run = pls_guided_construction(net, pot,
                                      initial_tree=dfs_tree(net))
        for a, b in zip(run.phi_history, run.phi_history[1:]):
            assert b < a

    def test_phi_max_bound(self):
        pot = BFSPotential()
        for net in GRAPHS:
            for seed in range(3):
                t = random_spanning_tree(net, seed=seed)
                assert 0 <= pot.value(net, t) <= pot.max_value(net)

    def test_iterations_within_phi_max(self):
        pot = BFSPotential()
        for net in GRAPHS:
            run = pls_guided_construction(net, pot, initial_tree=dfs_tree(net))
            assert run.iterations <= pot.max_value(net)

    def test_dfs_tree_of_complete_graph_needs_work(self):
        """In K_n the DFS tree is a path (phi > 0): the engine must actually
        perform swaps to flatten it into a star (the BFS tree)."""
        net = complete_graph(9, seed=8)
        pot = BFSPotential()
        d = dfs_tree(net)
        assert pot.value(net, d) > 0
        run = pls_guided_construction(net, pot, initial_tree=d)
        assert run.iterations > 0
        assert run.tree.height() == 1

    def test_improvement_is_none_only_at_zero(self):
        net = random_connected_graph(15, seed=9)
        pot = BFSPotential()
        for seed in range(5):
            t = random_spanning_tree(net, seed=seed)
            pair = pot.find_improvement(net, t)
            if pot.value(net, t) == 0:
                assert pair is None
            # a non-zero potential does not guarantee a local improvement
            # candidate at *every* node, but the engine never needs one when
            # phi = 0

    def test_engine_raises_on_budget_exhaustion(self):
        """A potential that lies about phi_max is caught by the engine."""
        net = ring(8, seed=10)

        class LyingPotential(BFSPotential):
            def max_value(self, net):
                return 0

        d = dfs_tree(net)
        pot = LyingPotential()
        if pot.value(net, d) > 0:
            with pytest.raises(RuntimeError, match="phi_max"):
                pls_guided_construction(net, pot, initial_tree=d)

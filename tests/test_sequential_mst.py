"""Tests for Section VI at the sequential level: baselines, the Boruvka
trace, the MST PLS, the potential, and Algorithm 2 as an instance of
Algorithm 1."""

import math

import pytest
from dataclasses import replace

from repro.baselines import boruvka_mst, is_mst, kruskal_mst, prim_mst
from repro.core import bfs_tree, random_spanning_tree, tree_from_edges
from repro.core.local_search import pls_guided_construction
from repro.core.mst import MSTPotential
from repro.graphs import (
    complete_graph,
    grid_graph,
    random_connected_graph,
    ring,
    theta_graph,
)
from repro.labeling.mst_pls import (
    MSTPLS,
    boruvka_trace,
    find_mst_violation,
)

WEIGHTED = [
    ring(8, seed=1, weighted=True),
    grid_graph(3, 4, seed=2, weighted=True),
    complete_graph(6, seed=3, weighted=True),
    theta_graph([3, 4, 5], seed=4, weighted=True),
    random_connected_graph(16, seed=5, weighted=True),
    random_connected_graph(20, extra_edges=30, seed=6, weighted=True),
]

IDS = [f"n{n.n}m{n.m}" for n in WEIGHTED]


class TestSequentialBaselines:
    @pytest.mark.parametrize("net", WEIGHTED, ids=IDS)
    def test_three_algorithms_agree(self, net):
        k = kruskal_mst(net)
        assert prim_mst(net) == k
        assert boruvka_mst(net) == k

    @pytest.mark.parametrize("net", WEIGHTED, ids=IDS)
    def test_mst_is_spanning_tree(self, net):
        mst = kruskal_mst(net)
        assert len(mst) == net.n - 1
        tree_from_edges(net, mst, root=net.min_id)  # validates tree-ness

    def test_mst_weight_minimal_vs_random_trees(self):
        net = random_connected_graph(12, seed=7, weighted=True)
        opt = net.total_weight(kruskal_mst(net))
        for seed in range(8):
            t = random_spanning_tree(net, seed=seed)
            assert net.total_weight(t.edges()) >= opt

    def test_is_mst_detects_non_mst(self):
        net = complete_graph(6, seed=8, weighted=True)
        mst = kruskal_mst(net)
        t = bfs_tree(net)
        assert is_mst(net, mst)
        if t.edges() != mst:
            assert not is_mst(net, t.edges())


class TestBoruvkaTrace:
    @pytest.mark.parametrize("net", WEIGHTED, ids=IDS)
    def test_level_count_logarithmic(self, net):
        tree = bfs_tree(net)
        trace = boruvka_trace(net, tree)
        k = len(trace[net.min_id])
        assert k <= math.ceil(math.log2(net.n)) + 1
        assert all(len(t) == k for t in trace.values())

    def test_level1_singletons(self):
        net = random_connected_graph(10, seed=9, weighted=True)
        tree = bfs_tree(net)
        trace = boruvka_trace(net, tree)
        for v in net.nodes:
            assert trace[v][0].fragment == v
            assert trace[v][0].dist == 0

    def test_top_level_single_fragment_no_out_edge(self):
        net = random_connected_graph(10, seed=10, weighted=True)
        tree = bfs_tree(net)
        trace = boruvka_trace(net, tree)
        tops = {trace[v][-1].fragment for v in net.nodes}
        assert len(tops) == 1
        assert all(trace[v][-1].out_edge is None for v in net.nodes)

    def test_selected_edges_are_tree_edges(self):
        net = random_connected_graph(12, seed=11, weighted=True)
        tree = random_spanning_tree(net, seed=12)
        trace = boruvka_trace(net, tree)
        tedges = tree.edges()
        for v in net.nodes:
            for lv in trace[v]:
                if lv.out_edge is not None:
                    a, b, w = lv.out_edge
                    assert (min(a, b), max(a, b)) in tedges
                    assert net.weight(a, b) == w

    def test_fragments_grow(self):
        """Each level at least halves the number of fragments."""
        net = random_connected_graph(16, seed=13, weighted=True)
        tree = bfs_tree(net)
        trace = boruvka_trace(net, tree)
        k = len(trace[net.min_id])
        prev = None
        for i in range(k):
            count = len({trace[v][i].fragment for v in net.nodes})
            if prev is not None:
                assert count <= math.ceil(prev / 2)
            prev = count

    def test_trace_of_mst_has_no_violation(self):
        net = random_connected_graph(14, seed=14, weighted=True)
        mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
        assert find_mst_violation(net, mst) is None

    def test_non_mst_has_violation(self):
        net = complete_graph(7, seed=15, weighted=True)
        t = bfs_tree(net)
        if not is_mst(net, t.edges()):
            assert find_mst_violation(net, t) is not None


class TestMSTPLS:
    def test_mst_certificates_accepted(self):
        pls = MSTPLS()
        for net in WEIGHTED:
            mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
            labels = pls.prove(net, mst)
            res = pls.verify(net, labels)
            assert res.accepted, res.rejecting_nodes

    def test_non_mst_rejected_by_full_verifier(self):
        pls = MSTPLS()
        rejected = 0
        for net in WEIGHTED:
            for seed in range(4):
                t = random_spanning_tree(net, seed=seed)
                if is_mst(net, t.edges()):
                    continue
                labels = pls.prove(net, t)
                assert not pls.verify(net, labels).accepted
                rejected += 1
        assert rejected >= 5

    def test_trace_verifier_accepts_non_mst_traces(self):
        """The trace-only verifier certifies the labels, not optimality."""
        pls = MSTPLS()
        net = random_connected_graph(14, seed=16, weighted=True)
        t = random_spanning_tree(net, seed=17)
        labels = pls.prove(net, t)
        for v in net.nodes:
            assert pls.verify_trace_at(net, v, labels), v

    def test_forged_fragment_id_rejected(self):
        pls = MSTPLS()
        net = random_connected_graph(12, seed=18, weighted=True)
        mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
        labels = pls.prove(net, mst)
        v = [u for u in net.nodes if u != net.min_id][0]
        lv = labels[v].levels
        if len(lv) > 1:
            ghost = replace(lv[1], fragment=0)  # nobody owns id 0
            bad = dict(labels)
            bad[v] = replace(bad[v], levels=lv[:1] + (ghost,) + lv[2:])
            assert not pls.verify(net, bad)

    def test_forged_out_edge_weight_rejected(self):
        pls = MSTPLS()
        net = random_connected_graph(12, seed=19, weighted=True)
        mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
        labels = pls.prove(net, mst)
        for v in net.nodes:
            lv = labels[v].levels
            oe = lv[0].out_edge
            if oe is not None and oe[0] == v:
                forged = replace(lv[0], out_edge=(oe[0], oe[1], oe[2] + 1))
                bad = dict(labels)
                bad[v] = replace(bad[v], levels=(forged,) + lv[1:])
                assert not pls.verify(net, bad)
                return
        pytest.fail("no level-0 out-edge endpoint found")

    def test_label_bits_log_squared(self):
        pls = MSTPLS()
        for n in (8, 16, 32):
            net = random_connected_graph(n, seed=20, weighted=True)
            mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
            labels = pls.prove(net, mst)
            bits = pls.max_label_bits(net, labels)
            logn = math.log2(net.id_space)
            assert bits <= 6 * logn * logn  # O(log^2 n) with a small constant


class TestMSTPotentialAndAlgorithm2:
    def test_phi_zero_iff_mst(self):
        pot = MSTPotential()
        for net in WEIGHTED[:4]:
            mst = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
            assert pot.value(net, mst) == 0
            for seed in range(3):
                t = random_spanning_tree(net, seed=seed)
                assert (pot.value(net, t) == 0) == is_mst(net, t.edges())

    @pytest.mark.parametrize("net", WEIGHTED, ids=IDS)
    def test_algorithm2_reaches_the_mst(self, net):
        pot = MSTPotential()
        for seed in range(3):
            start = random_spanning_tree(net, seed=seed)
            run = pls_guided_construction(net, pot, initial_tree=start,
                                          require_strict_decrease=False)
            assert is_mst(net, run.tree.edges())
            assert run.final_phi == 0

    def test_mst_edge_count_strictly_increasing(self):
        """The termination invariant (see the reproduction note in
        repro.core.mst): every red-rule swap adds an MST edge and removes a
        non-MST edge."""
        net = random_connected_graph(14, seed=21, weighted=True)
        mst = kruskal_mst(net)
        pot = MSTPotential()
        tree = random_spanning_tree(net, seed=22)
        overlap = len(tree.edges() & mst)
        while True:
            pair = pot.find_improvement(net, tree)
            if pair is None:
                break
            tree = tree.swap(*pair)
            new_overlap = len(tree.edges() & mst)
            assert new_overlap == overlap + 1
            overlap = new_overlap

    def test_swap_count_at_most_n_minus_1(self):
        """Consequence of the invariant above: at most n - 1 swaps."""
        for net in WEIGHTED:
            pot = MSTPotential()
            run = pls_guided_construction(net, pot,
                                          initial_tree=random_spanning_tree(net, seed=0),
                                          require_strict_decrease=False)
            assert run.iterations <= net.n - 1

    def test_phi_max_bound_holds(self):
        net = random_connected_graph(12, seed=23, weighted=True)
        pot = MSTPotential()
        for seed in range(5):
            t = random_spanning_tree(net, seed=seed)
            assert 0 <= pot.value(net, t) <= pot.max_value(net)

    def test_weight_strictly_decreasing(self):
        net = complete_graph(8, seed=24, weighted=True)
        pot = MSTPotential()
        tree = random_spanning_tree(net, seed=25)
        weights = [tree.total_weight()]
        while True:
            pair = pot.find_improvement(net, tree)
            if pair is None:
                break
            tree = tree.swap(*pair)
            weights.append(tree.total_weight())
        for a, b in zip(weights, weights[1:]):
            assert b < a

"""Tests for the distance-based and size-based spanning-tree PLS."""

import pytest
from dataclasses import replace

from repro.core import bfs_tree, random_spanning_tree
from repro.graphs import (
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    ring,
    star_graph,
)
from repro.labeling.tree_pls import DistanceLabel, DistancePLS, SizeLabel, SizePLS

NETS = [
    path_graph(6, seed=1),
    ring(7, seed=2),
    star_graph(8, seed=3),
    grid_graph(3, 3, seed=4),
    complete_graph(5, seed=5),
    random_connected_graph(14, seed=6),
]


@pytest.mark.parametrize("scheme", [DistancePLS(), SizePLS()])
class TestCompleteness:
    """Correct labelings of real spanning trees are accepted everywhere."""

    @pytest.mark.parametrize("net", NETS, ids=lambda n: f"n{n.n}m{n.m}")
    def test_prover_labels_accepted(self, scheme, net):
        for seed in (0, 1, 2):
            tree = random_spanning_tree(net, seed=seed)
            labels = scheme.prove(net, tree)
            result = scheme.verify(net, labels)
            assert result.accepted, result.rejecting_nodes


class TestDistanceSoundness:
    def setup_method(self):
        self.scheme = DistancePLS()
        self.net = random_connected_graph(12, seed=7)
        self.tree = bfs_tree(self.net)
        self.labels = self.scheme.prove(self.net, self.tree)

    def test_wrong_distance_rejected(self):
        v = [u for u in self.net.nodes if u != self.tree.root][0]
        bad = dict(self.labels)
        bad[v] = replace(bad[v], d=bad[v].d + 1)
        assert not self.scheme.verify(self.net, bad)

    def test_disagreeing_root_id_rejected(self):
        v = list(self.net.nodes)[3]
        bad = dict(self.labels)
        bad[v] = replace(bad[v], rid=v)
        assert not self.scheme.verify(self.net, bad)

    def test_root_claims_nonzero_distance_rejected(self):
        r = self.tree.root
        bad = dict(self.labels)
        bad[r] = replace(bad[r], d=1)
        assert not self.scheme.verify(self.net, bad)

    def test_cycle_rejected(self):
        """Parent pointers forming a cycle cannot carry consistent distances."""
        net = ring(6, scramble_ids=False)
        nodes = list(net.nodes)
        labels = {}
        for i, v in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            labels[v] = DistanceLabel(rid=1, par=nxt, d=i)
        assert not self.scheme.verify(net, labels)

    def test_two_components_rejected(self):
        """A forest claiming one root: the second bottom node rejects."""
        net = path_graph(4, scramble_ids=False)
        labels = {
            1: DistanceLabel(rid=1, par=None, d=0),
            2: DistanceLabel(rid=1, par=1, d=1),
            3: DistanceLabel(rid=1, par=None, d=0),   # impostor root
            4: DistanceLabel(rid=1, par=3, d=1),
        }
        res = self.scheme.verify(net, labels)
        assert not res.accepted
        assert 3 in res.rejecting_nodes

    def test_distance_at_bound_rejected(self):
        v = [u for u in self.net.nodes if u != self.tree.root][0]
        bad = dict(self.labels)
        bad[v] = replace(bad[v], d=self.net.n_bound)
        assert not self.scheme.verify(self.net, bad)

    def test_non_neighbor_parent_rejected(self):
        net = path_graph(4, scramble_ids=False)
        tree = bfs_tree(net, root=1)
        labels = self.scheme.prove(net, tree)
        bad = dict(labels)
        bad[4] = replace(bad[4], par=1)  # 1 is not adjacent to 4
        assert not self.scheme.verify(net, bad)

    def test_label_bits_logarithmic(self):
        for n in (8, 16, 32, 64):
            net = path_graph(n, seed=1)
            tree = bfs_tree(net)
            labels = self.scheme.prove(net, tree)
            bits = self.scheme.max_label_bits(net, labels)
            # (rid, par, d): about 3 log n + O(1) bits
            import math
            assert bits <= 3 * math.ceil(math.log2(net.id_space)) + 3


class TestSizeSoundness:
    def setup_method(self):
        self.scheme = SizePLS()
        self.net = random_connected_graph(12, seed=8)
        self.tree = bfs_tree(self.net)
        self.labels = self.scheme.prove(self.net, self.tree)

    def test_wrong_size_rejected(self):
        v = list(self.net.nodes)[4]
        bad = dict(self.labels)
        bad[v] = replace(bad[v], s=bad[v].s + 1)
        assert not self.scheme.verify(self.net, bad)

    def test_cycle_rejected_by_size(self):
        """Sizes must strictly increase along parent pointers on a cycle."""
        net = ring(5, scramble_ids=False)
        nodes = list(net.nodes)
        labels = {}
        for i, v in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            labels[v] = SizeLabel(rid=1, par=nxt, s=3)
        assert not self.scheme.verify(net, labels)

    def test_size_above_bound_rejected(self):
        bad = dict(self.labels)
        r = self.tree.root
        bad[r] = replace(bad[r], s=self.net.n_bound + 1)
        assert not self.scheme.verify(self.net, bad)

    def test_root_size_must_count_children(self):
        bad = dict(self.labels)
        r = self.tree.root
        bad[r] = replace(bad[r], s=1)
        assert not self.scheme.verify(self.net, bad)

"""Tests for the partitioned shard-parallel runtime (repro.runtime.sharding).

Covers the contract of the sharding PR:

* partition planning — coverage, balance, cut counting, JSON round-trip,
  fingerprint stability, both methods;
* the implicit (lazy) topology family and shard-local subnetwork cuts;
* the equivalence theorem in executable form: sharded execution is
  bit-identical to the single-process engine — same moves, rounds,
  silence, and final-configuration digest — at shard counts {1, 2, 4, 8},
  in-process and with one worker process per shard, at every round edge,
  and in both initialization modes (per-node seeds and a full global
  configuration);
* loud failure when a worker process dies mid-run (shard id + round
  number in the exception);
* rejection of protocols whose reads cannot be sharded;
* the ``python -m repro shard`` CLI (plan persistence, verify gate) and
  the sharded perf workloads.
"""

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.registry import build_config, build_network, build_protocol
from repro.graphs.implicit import (
    build_topology,
    implicit_grid,
    implicit_hypercube,
    implicit_ring,
    shard_network,
)
from repro.perf.workloads import WORKLOADS, Workload, select_workloads
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.sharding import (
    ShardCrashError,
    ShardPlan,
    ShardedSimulator,
    per_node_configuration,
    plan_partition,
    simulator_fingerprint,
    single_process_reference,
)
from repro.runtime.sharding.engine import _FP_MOD
from repro.runtime.simulator import Simulator

SRC = Path(__file__).resolve().parent.parent / "src"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


def _factory(name):
    def make():
        return build_protocol(name)[0]
    return make


def _random_net(n=64, seed=11, **extra):
    return build_network("random", {"n": n, "seed": seed, **extra},
                         random.Random(0))


# ----------------------------------------------------------------------
# partition planning
# ----------------------------------------------------------------------

def test_plan_covers_every_node_exactly_once():
    topo = implicit_grid(8, 8)
    plan = plan_partition(topo, 4)
    owner = plan.owner_of()
    assert sorted(owner) == sorted(topo.nodes)
    assert sum(len(s) for s in plan.shards) == topo.n
    sizes = [len(s) for s in plan.shards]
    assert max(sizes) - min(sizes) <= 1
    assert plan.balance >= 1.0
    assert plan.cut_edges > 0
    # per-shard boundary widths: every shard of a connected grid has a
    # frontier, and no frontier can exceed the shard itself
    assert len(plan.boundary) == plan.k
    assert all(0 < b <= size for b, size in zip(plan.boundary, sizes))


def test_single_shard_plan_has_no_cut():
    topo = implicit_ring(12)
    plan = plan_partition(topo, 1)
    assert plan.k == 1
    assert plan.cut_edges == 0
    assert all(b == 0 for b in plan.boundary)


def test_plan_json_roundtrip_and_fingerprint_stability():
    topo = implicit_grid(6, 7)
    plan = plan_partition(topo, 3)
    again = ShardPlan.from_json(plan.to_json())
    assert again == plan
    assert again.fingerprint == plan.fingerprint
    # the fingerprint is a pure function of the node assignment
    assert plan_partition(topo, 3).fingerprint == plan.fingerprint


def test_both_partition_methods_are_valid():
    topo = implicit_grid(5, 8)
    for method in ("bfs", "stripes"):
        plan = plan_partition(topo, 4, method=method)
        assert plan.method == method
        assert sorted(plan.owner_of()) == sorted(topo.nodes)


def test_plan_partition_works_on_materialized_networks():
    net = _random_net(48, seed=17)
    plan = plan_partition(net, 3)
    assert sorted(plan.owner_of()) == sorted(net.nodes)


# ----------------------------------------------------------------------
# implicit topologies
# ----------------------------------------------------------------------

def test_implicit_ring_neighbors_and_materialize():
    topo = implicit_ring(6)
    assert topo.n == 6
    assert set(topo.neighbors(1)) == {2, 6}
    net = topo.materialize()
    assert net.n == 6 and net.m == topo.m == 6
    for v in topo.nodes:
        assert set(net.neighbors(v)) == set(topo.neighbors(v))


def test_implicit_grid_and_hypercube_degrees():
    grid = implicit_grid(4, 5)
    assert grid.n == 20
    corner_deg = len(list(grid.neighbors(1)))
    assert corner_deg == 2
    cube = implicit_hypercube(3)
    assert cube.n == 8
    assert all(len(list(cube.neighbors(v))) == 3 for v in cube.nodes)
    assert cube.m == 12


def test_build_topology_by_name():
    topo = build_topology("implicit-grid", {"rows": 3, "cols": 4})
    assert topo.n == 12
    with pytest.raises(ValueError):
        build_topology("implicit-grid", {"rows": 3})


def test_shard_network_keeps_global_id_space():
    topo = implicit_grid(4, 4)
    plan = plan_partition(topo, 2)
    owned = plan.shards[0]
    net, halo = shard_network(topo, owned)
    assert set(owned) <= set(net.nodes)
    assert set(halo) == set(net.nodes) - set(owned)
    # identifier bounds stay global: rules that compare against
    # id_space / n_bound must behave exactly as on the whole network
    assert net.id_space == topo.id_space
    assert net.n_bound == topo.n_bound
    # every halo node really neighbors some owned node
    owned_set = set(owned)
    for h in halo:
        assert any(u in owned_set for u in net.neighbors(h))


# ----------------------------------------------------------------------
# equivalence: sharded == single-process, bit for bit
# ----------------------------------------------------------------------

@pytest.mark.parametrize("proto", ["sst", "adhoc-bfs"])
def test_equivalence_across_shard_counts(proto):
    net = _random_net(64, seed=11)
    factory = _factory(proto)
    ref = single_process_reference(net, factory, init_seed=3)
    for k in (1, 2, 4, 8):
        sharded = ShardedSimulator(net, factory, k, init_seed=3)
        res = sharded.run(max_rounds=10_000)
        sharded.close()
        assert (res.rounds, res.moves, res.silent, res.fingerprint) == ref, \
            f"{proto} diverged at k={k}"


def test_equivalence_guided_bfs_on_implicit_grid():
    topo = implicit_grid(6, 8)
    factory = _factory("guided-bfs")
    ref = single_process_reference(topo, factory, init_seed=5)
    sharded = ShardedSimulator(topo, factory, 4, init_seed=5)
    res = sharded.run(max_rounds=10_000)
    sharded.close()
    assert (res.rounds, res.moves, res.silent, res.fingerprint) == ref


def test_equivalence_with_worker_processes():
    net = _random_net(96, seed=23)
    factory = _factory("sst")
    ref = single_process_reference(net, factory, init_seed=7)
    with ShardedSimulator(net, factory, 2, init_seed=7,
                          processes=True) as sharded:
        res = sharded.run(max_rounds=10_000)
    assert (res.rounds, res.moves, res.silent, res.fingerprint) == ref
    assert len(res.peak_rss_kb) == 2 and all(r > 0 for r in res.peak_rss_kb)
    assert sum(res.shard_moves) == res.moves


def test_equivalence_at_every_round_edge():
    """The configurations agree after *each* round, not only at the end."""
    net = _random_net(48, seed=31)
    protocol = build_protocol("sst")[0]
    spec = protocol.register_spec(net)
    config = per_node_configuration(net, spec, 9)
    sim = Simulator(net, protocol, SynchronousScheduler(), config=config)
    sharded = ShardedSimulator(net, _factory("sst"), 4, init_seed=9)
    for _ in range(10_000):
        moved_ref = sim.run_round()
        moved_sharded = sharded.run_round()
        assert bool(moved_sharded) == bool(moved_ref)
        assert sharded.fingerprint() == \
            f"{simulator_fingerprint(sim) % _FP_MOD:032x}"
        if not moved_ref:
            break
    assert sim.is_silent() and sharded.is_silent()
    sharded.close()


def test_equivalence_with_global_configuration():
    """The ``config=`` mode: workers slice a full name-keyed config."""
    net = _random_net(48, seed=17)
    protocol = build_protocol("sst")[0]
    config, _ = build_config("arbitrary", net, protocol,
                             random.Random(1), {"seed": 7})
    factory = _factory("sst")
    ref = single_process_reference(net, factory, config=config)
    sharded = ShardedSimulator(net, factory, 3, config=config)
    res = sharded.run(max_rounds=10_000)
    sharded.close()
    assert (res.rounds, res.moves, res.silent, res.fingerprint) == ref


def test_collect_config_matches_reference():
    net = _random_net(32, seed=41)
    factory = _factory("sst")
    protocol = build_protocol("sst")[0]
    spec = protocol.register_spec(net)
    config = per_node_configuration(net, spec, 2)
    sim = Simulator(net, protocol, SynchronousScheduler(), config=config)
    while sim.run_round():
        pass
    sharded = ShardedSimulator(net, factory, 2, init_seed=2)
    sharded.run(max_rounds=10_000)
    merged = sharded.collect_config()
    sharded.close()
    assert set(merged) == set(net.nodes)
    names = sim.schema.names
    for v in net.nodes:
        assert merged[v] == dict(zip(names, sim._state[v]))


# ----------------------------------------------------------------------
# failure modes
# ----------------------------------------------------------------------

def test_unshardable_protocol_is_rejected():
    net = _random_net(32, seed=12, weighted=True)
    with pytest.raises(ValueError, match="declines sharded execution"):
        ShardedSimulator(net, _factory("guided-mst"), 2, init_seed=1)


def test_worker_crash_fails_loudly_with_shard_and_round():
    topo = implicit_grid(8, 16)
    sharded = ShardedSimulator(topo, _factory("sst"), 2, init_seed=7,
                               processes=True)
    try:
        assert sharded.run_round() > 0
        assert sharded.run_round() > 0
        victim = sharded._procs[1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        deadline = time.monotonic() + 10
        with pytest.raises(ShardCrashError) as excinfo:
            while time.monotonic() < deadline:
                sharded.run_round()
        err = excinfo.value
        assert err.shard_id == 1
        assert err.round_no == 3
        assert "shard 1" in str(err) and "round 3" in str(err)
        # the error carries the dead worker's last telemetry frame: the
        # post-mortem anchor (which round it last completed, how many
        # moves it reported) without any trace file in play
        assert err.frame is not None
        assert err.frame["round"] == 2
        assert err.frame["moves"] > 0
        assert "last telemetry frame" in str(err)
        assert "round 2" in str(err)
    finally:
        sharded.terminate()


# ----------------------------------------------------------------------
# the CLI and the perf workloads
# ----------------------------------------------------------------------

def test_cli_plan_persists_a_loadable_plan(tmp_path):
    out = tmp_path / "plan.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "shard", "plan",
         "implicit-grid:rows=8,cols=8", "2", "--out", str(out)],
        capture_output=True, text=True, env=_env())
    assert proc.returncode == 0, proc.stderr
    assert "fingerprint" in proc.stdout
    plan = ShardPlan.from_json(out.read_text())
    assert plan.n == 64 and plan.k == 2
    assert plan == plan_partition(implicit_grid(8, 8), 2)


def test_cli_verify_passes_on_small_workload(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "shard", "verify",
         "--topology", "random:n=48,seed=17", "--shards", "1,2",
         "--protocol", "sst", "--in-process"],
        capture_output=True, text=True, env=_env())
    assert proc.returncode == 0, proc.stderr
    assert "bit-identical" in proc.stdout


def test_sharded_workloads_are_registered():
    assert WORKLOADS["sst-1m"].shards == 8
    assert WORKLOADS["guided-bfs-262144"].shards == 8
    smoke = {w.name for w in select_workloads(smoke=True)}
    assert "smoke-shard-sst-512" in smoke


def test_sharded_workload_validation():
    base = dict(family="engine", protocol="sst", topology="implicit-grid",
                topo_params=(("cols", 8), ("rows", 8)),
                init="per-node", init_params=(("seed", 1),), shards=2)
    Workload(name="ok", **base)
    with pytest.raises(ValueError, match="synchronous"):
        Workload(name="bad-sched", **{**base, "scheduler": "central-random"})
    with pytest.raises(ValueError, match="per-node"):
        Workload(name="bad-init", **{**base, "init": "arbitrary"})
    with pytest.raises(ValueError, match="round-budgeted"):
        Workload(name="bad-budget", **{**base, "move_budget": 10})

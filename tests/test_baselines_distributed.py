"""Tests for the comparison baselines: the two dimensions the paper
compares on (register width and silence) must hold by construction."""

import math

import pytest

from repro.baselines import (
    AdHocBFSProtocol,
    BigMemoryMDST,
    CompactNonSilentMST,
)
from repro.graphs import random_connected_graph, ring
from repro.runtime import (
    Simulator,
    SynchronousScheduler,
    max_register_bits,
    random_configuration,
)


class TestCompactMST:
    def test_holds_the_mst(self):
        net = random_connected_graph(10, seed=1, weighted=True)
        base = CompactNonSilentMST()
        sim = Simulator(net, base)
        sim.run(max_rounds=20, stop_when=lambda n, c: base.is_legal(n, c))
        assert base.is_legal(net, sim.config)

    def test_never_silent(self):
        net = ring(8, seed=2, weighted=True)
        base = CompactNonSilentMST()
        sim = Simulator(net, base)
        with pytest.raises(RuntimeError, match="no convergence"):
            sim.run(max_rounds=200)
        assert not sim.is_silent()

    def test_logarithmic_registers(self):
        for n in (8, 16, 32):
            net = random_connected_graph(n, seed=3, weighted=True)
            base = CompactNonSilentMST()
            sim = Simulator(net, base)
            bits = max_register_bits(net, sim.spec, sim.config)
            assert bits <= 4 * math.log2(net.id_space) + 10

    def test_wave_keeps_moving(self):
        net = ring(6, seed=4, weighted=True)
        base = CompactNonSilentMST()
        sim = Simulator(net, base, SynchronousScheduler())
        before = dict(sim.config[net.min_id])
        for _ in range(base.MOD):
            sim.run_round()
        # counters cycled; the tree did not change
        assert base.is_legal(net, sim.config)
        assert sim.moves >= net.n


class TestBigMemoryMDST:
    def test_holds_an_fr_tree(self):
        from repro.core import tree_from_edges
        from repro.core.fr import is_fr_tree
        net = random_connected_graph(9, extra_edges=10, seed=5)
        base = BigMemoryMDST()
        sim = Simulator(net, base)
        sim.run(max_rounds=20, stop_when=lambda n, c: base.is_legal(n, c))
        edges = set(sim.config[net.min_id]["tree_copy"])
        tree = tree_from_edges(net, edges, root=net.min_id)
        assert is_fr_tree(net, tree)

    def test_linear_registers(self):
        """Omega(n log n): the register grows linearly with n."""
        sizes = []
        for n in (8, 16):
            net = random_connected_graph(n, seed=6)
            base = BigMemoryMDST()
            sim = Simulator(net, base)
            sim.run(max_rounds=20, stop_when=lambda nn, c: base.is_legal(nn, c))
            sizes.append(max_register_bits(net, sim.spec, sim.config))
        assert sizes[1] >= 1.6 * sizes[0]

    def test_never_silent(self):
        net = ring(6, seed=7)
        base = BigMemoryMDST()
        sim = Simulator(net, base)
        with pytest.raises(RuntimeError, match="no convergence"):
            sim.run(max_rounds=100)

    def test_recovers_copies_after_corruption(self):
        net = random_connected_graph(8, seed=8)
        base = BigMemoryMDST()
        sim = Simulator(net, base)
        sim.run(max_rounds=20, stop_when=lambda n, c: base.is_legal(n, c))
        cfg = random_configuration(net, base, seed=9)
        sim2 = Simulator(net, base, config=cfg)
        sim2.run(max_rounds=20, stop_when=lambda n, c: base.is_legal(n, c))
        assert base.is_legal(net, sim2.config)


class TestAdHocBFS:
    def test_same_behavior_as_sst(self):
        net = random_connected_graph(11, seed=10)
        proto = AdHocBFSProtocol()
        cfg = random_configuration(net, proto, seed=11)
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=40 * net.n)
        assert result.silent
        assert proto.is_legal(net, sim.config)

    def test_faster_than_guided_on_same_instance(self):
        """The paper concedes ad hoc constructions are faster; confirm the
        direction of the comparison the benchmarks report."""
        from repro.core import dfs_tree
        from repro.core.swap import MalleableTreeProtocol
        from repro.core.tasks import guided_bfs_protocol
        net = ring(10, seed=12)
        adhoc = AdHocBFSProtocol()
        sim_a = Simulator(net, adhoc, SynchronousScheduler())
        ra = sim_a.run(max_rounds=20 * net.n)
        guided = guided_bfs_protocol()
        base = MalleableTreeProtocol().legal_configuration(net, dfs_tree(net))
        cfg = guided.initial_configuration(net)
        for v in net.nodes:
            cfg[v].update(base[v])
        sim_g = Simulator(net, guided, SynchronousScheduler(), config=cfg)
        rg = sim_g.run(max_rounds=4000 * net.n)
        assert ra.rounds <= rg.rounds
